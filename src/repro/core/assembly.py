"""Result assembly on the query originator (Section 4.3).

The originator merges each incoming reduced local skyline ``SK'_i`` into
its running result ``SK_org``: duplicates are identified by location only
(no two distinct sites share an ``(x, y)``), and dominance is resolved in
both directions so non-qualifying tuples from either side are removed.
The paper does this "within a simple nested loop"; the implementation
below mirrors those semantics and is also used by intermediate devices in
depth-first forwarding, which merge results en route.

Two execution paths produce bit-identical results:

* the **legacy** path (:func:`merge_skylines` with ``block=None`` and
  :class:`SkylineAssembler` in ``incremental=False`` mode) rebuilds a
  :class:`~repro.storage.relation.Relation` per contribution with one
  unbounded ``(C, I, d)`` broadcast — the reference semantics;
* the **incremental** path (the default) maintains a running
  ``(xy, values, site_ids)`` array triple plus its normalization,
  eliminates duplicates against a persistent location set (one hash
  lookup per incoming row instead of rebuilding the set per merge), and
  resolves dominance in ``(block, block, d)`` chunks so peak memory is
  bounded regardless of skyline size.

The differential suite in ``tests/test_fast_path_parity.py`` pins the
two paths to each other bit for bit.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from ..storage.relation import Relation
from ..storage.schema import RelationSchema

__all__ = ["merge_skylines", "SkylineAssembler", "DEFAULT_MERGE_BLOCK"]

#: Default chunk edge for the blocked dominance pass: peak intermediate
#: memory is ``block² · d`` booleans per comparison direction.
DEFAULT_MERGE_BLOCK = 512


def _dominated_by(
    by: np.ndarray, targets: np.ndarray, block: Optional[int]
) -> np.ndarray:
    """Mask over ``targets`` rows strictly dominated by some ``by`` row.

    Both inputs are in minimization space. ``block=None`` runs one
    unbounded broadcast (the legacy reference); an integer runs the same
    elementwise comparisons in ``(block, block)`` tiles — identical
    output, bounded peak memory.
    """
    n_targets = targets.shape[0]
    if by.shape[0] == 0 or n_targets == 0:
        return np.zeros(n_targets, dtype=bool)
    if block is None:
        no_worse = (by[:, None, :] <= targets[None, :, :]).all(axis=2)
        better = (by[:, None, :] < targets[None, :, :]).any(axis=2)
        return (no_worse & better).any(axis=0)
    out = np.zeros(n_targets, dtype=bool)
    dims = by.shape[1]
    for j in range(0, n_targets, block):
        tgt = targets[j : j + block]
        # Bound the broadcast intermediates to block² elements per
        # attribute: when one side is short, the other side's chunk
        # grows to compensate, so a lopsided comparison (a handful of
        # incoming rows against a big running skyline) still runs in a
        # single numpy pass instead of many tiny tiles.
        rows = max(block, (block * block) // tgt.shape[0])
        for i in range(0, by.shape[0], rows):
            blk = by[i : i + rows]
            # Attribute-at-a-time 2-D comparisons: the equivalent
            # (R, T, d) broadcast forces numpy onto a strided inner
            # loop that is an order of magnitude slower here.
            no_worse = blk[:, 0:1] <= tgt[:, 0]
            better = blk[:, 0:1] < tgt[:, 0]
            for a in range(1, dims):
                no_worse &= blk[:, a : a + 1] <= tgt[:, a]
                better |= blk[:, a : a + 1] < tgt[:, a]
            out[j : j + block] |= (no_worse & better).any(axis=0)
    return out


def merge_skylines(
    current: Relation,
    incoming: Relation,
    block: Optional[int] = DEFAULT_MERGE_BLOCK,
) -> Relation:
    """Merge an incoming partial skyline into the current one.

    Args:
        current: The running merged skyline (internally dominance-free).
        incoming: A reduced local skyline ``SK'_i`` (also internally
            dominance-free, as local skylines are).
        block: Chunk edge for the blocked dominance pass; ``None`` uses
            one unbounded broadcast (the legacy reference path). Output
            is bit-identical either way.

    Returns:
        The updated skyline: duplicates dropped (first copy wins),
        dominated tuples from either side removed.
    """
    if current.schema != incoming.schema:
        raise ValueError("cannot merge skylines over different schemas")
    if incoming.cardinality == 0:
        return current
    if current.cardinality == 0:
        return _dedup_within(incoming)
    incoming = _dedup_within(incoming)

    cur_vals = current.normalized_values()
    inc_vals = incoming.normalized_values()

    # Duplicate detection by (x, y) only (Section 4.3).
    dup_incoming = _duplicate_mask(incoming.xy, current.xy)

    # a dominates b: a <= b everywhere, a < b somewhere (minimization
    # space). Incoming tuples are tested against the *pre-merge* current
    # set and vice versa, exactly as the nested loop of the paper does.
    inc_dominated = _dominated_by(cur_vals, inc_vals, block)
    keep_incoming = ~(inc_dominated | dup_incoming)
    # Only non-duplicate incoming survivors may evict current members —
    # a duplicate carries no new information, and a dominated incoming
    # tuple cannot dominate anything the current set keeps.
    cur_dominated = _dominated_by(inc_vals[keep_incoming], cur_vals, block)
    keep_current = ~cur_dominated

    merged_xy = np.vstack([current.xy[keep_current], incoming.xy[keep_incoming]])
    merged_vals = np.vstack(
        [current.values[keep_current], incoming.values[keep_incoming]]
    )
    merged_ids = np.concatenate(
        [current.site_ids[keep_current], incoming.site_ids[keep_incoming]]
    )
    return Relation._wrap(current.schema, merged_xy, merged_vals, merged_ids)


def _duplicate_mask(xy: np.ndarray, against: np.ndarray) -> np.ndarray:
    """Rows of ``xy`` whose exact location appears in ``against``."""
    if against.shape[0] == 0 or xy.shape[0] == 0:
        return np.zeros(xy.shape[0], dtype=bool)
    seen = set(map(tuple, against.tolist()))
    return np.fromiter(
        (key in seen for key in map(tuple, xy.tolist())),
        dtype=bool,
        count=xy.shape[0],
    )


def _dedup_within(relation: Relation) -> Relation:
    """Drop same-location duplicates inside one partial result."""
    if relation.cardinality <= 1:
        return relation
    _, first = np.unique(relation.xy, axis=0, return_index=True)
    if first.shape[0] == relation.cardinality:
        return relation
    return relation.take(np.sort(first))


class SkylineAssembler:
    """Stateful assembler living on the query originator.

    Seed it with the originator's own local skyline, feed it each
    arriving ``SK'_i`` with :meth:`add`, and read the final (or current
    partial) answer from :meth:`result`. Merging is incremental, exactly
    as the paper describes.

    Args:
        schema: The shared relation schema.
        initial: The originator's own local skyline (optional seed).
        incremental: ``True`` (default) maintains running arrays with a
            persistent duplicate-location set and chunked dominance;
            ``False`` rebuilds a relation per contribution via
            :func:`merge_skylines` — the legacy reference path. Both
            produce bit-identical results.
        block: Chunk edge for the incremental dominance pass; ignored in
            legacy mode (which always uses the unbounded broadcast).
    """

    def __init__(
        self,
        schema: RelationSchema,
        initial: Optional[Relation] = None,
        *,
        incremental: bool = True,
        block: int = DEFAULT_MERGE_BLOCK,
    ):
        if block < 1:
            raise ValueError("block must be >= 1")
        self._schema = schema
        self._incremental = incremental
        self._block = block
        self._merges = 0
        seed = (
            _dedup_within(initial) if initial is not None else Relation.empty(schema)
        )
        if incremental:
            d = schema.dimensions
            self._xy = seed.xy
            self._values = seed.values
            self._site_ids = seed.site_ids
            self._norm = (
                seed.normalized_values()
                if seed.cardinality
                else np.empty((0, d), dtype=np.float64)
            )
            self._coords: set = set(map(tuple, seed.xy.tolist()))
            self._result_cache: Optional[Relation] = seed
        else:
            self._current = seed

    @property
    def merges(self) -> int:
        """How many partial results have been merged in."""
        return self._merges

    # -- incremental internals ----------------------------------------------

    def _add_incremental(self, incoming: Relation) -> None:
        inc_xy = incoming.xy
        inc_norm = incoming.normalized_values()
        n_inc = incoming.cardinality

        # Duplicate elimination in one pass: against the persistent
        # location set (O(1) lookups instead of rebuilding the set per
        # merge) and within the contribution itself (first copy wins).
        coords = self._coords
        keys = list(map(tuple, inc_xy.tolist()))
        keep_incoming = np.zeros(n_inc, dtype=bool)
        within: set = set()
        for i, key in enumerate(keys):
            if key not in coords and key not in within:
                keep_incoming[i] = True
                within.add(key)

        # Which incoming rows does the (pre-merge) current set dominate?
        keep_incoming &= ~_dominated_by(self._norm, inc_norm, self._block)
        if not keep_incoming.any():
            return

        # Which current rows do the surviving incoming rows dominate?
        kept_norm = inc_norm[keep_incoming]
        cur_dominated = _dominated_by(kept_norm, self._norm, self._block)
        if cur_dominated.any():
            keep = ~cur_dominated
            coords.difference_update(
                map(tuple, self._xy[cur_dominated].tolist())
            )
            self._xy = self._xy[keep]
            self._values = self._values[keep]
            self._site_ids = self._site_ids[keep]
            self._norm = self._norm[keep]

        self._xy = np.vstack([self._xy, inc_xy[keep_incoming]])
        self._values = np.vstack(
            [self._values, incoming.values[keep_incoming]]
        )
        self._site_ids = np.concatenate(
            [self._site_ids, incoming.site_ids[keep_incoming]]
        )
        self._norm = np.vstack([self._norm, kept_norm])
        coords.update(
            key for i, key in enumerate(keys) if keep_incoming[i]
        )

    def _materialize(self) -> Relation:
        if self._xy.shape[0] == 0:
            return Relation.empty(self._schema)
        return Relation._wrap(
            self._schema, self._xy, self._values, self._site_ids
        )

    # -- public API ----------------------------------------------------------

    def add(self, incoming: Relation) -> None:
        """Merge one incoming partial skyline."""
        if not self._incremental:
            self._current = merge_skylines(self._current, incoming, block=None)
            self._merges += 1
            return
        if incoming.schema != self._schema:
            raise ValueError("cannot merge skylines over different schemas")
        self._merges += 1
        if incoming.cardinality == 0:
            return
        self._result_cache = None
        self._add_incremental(incoming)

    def add_all(self, results: Iterable[Relation]) -> None:
        """Merge a batch of partial skylines."""
        for rel in results:
            self.add(rel)

    def result(self) -> Relation:
        """The current merged skyline ``SK_org``."""
        if not self._incremental:
            return self._current
        if self._result_cache is None:
            self._result_cache = self._materialize()
        return self._result_cache
