"""Distributed skyline query model and per-device query log.

A query is ``Q_ds = (id, cnt, pos_org, d)`` (Sections 2 and 3.4): ``id``
identifies the originating device, ``cnt`` is a small per-originator
counter used for duplicate suppression during forwarding, ``pos_org`` is
the originator's position and ``d`` the distance of interest.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Tuple

__all__ = ["SkylineQuery", "QueryLog", "QueryCounter", "COUNTER_MODULUS"]

#: The paper stores ``cnt`` in one byte (Section 3.4).
COUNTER_MODULUS = 256


@dataclass(frozen=True)
class SkylineQuery:
    """A distributed constrained skyline query ``Q_ds``.

    Attributes:
        origin: Identifier of the originating device ``M_org``.
        cnt: Originator-local query counter (one byte, wraps at 256).
        pos: ``(x, y)`` position of the originator at issue time.
        d: Distance of interest — sites farther than ``d`` from ``pos``
            are out of scope.
    """

    origin: int
    cnt: int
    pos: Tuple[float, float]
    d: float

    def __post_init__(self) -> None:
        if self.origin < 0:
            raise ValueError("origin must be >= 0")
        if not 0 <= self.cnt < COUNTER_MODULUS:
            raise ValueError(f"cnt must be in [0, {COUNTER_MODULUS}), got {self.cnt}")
        if self.d <= 0:
            raise ValueError("distance of interest d must be > 0")

    @property
    def key(self) -> Tuple[int, int]:
        """``(origin, cnt)`` — the identity used for duplicate checks."""
        return (self.origin, self.cnt)

    def unconstrained(self) -> "SkylineQuery":
        """A copy with an effectively unbounded region of interest.

        The static pre-tests "ignore the distance constraint"
        (Section 5.2.2-I); this helper gives them a query object whose
        spatial predicate never rejects anything.
        """
        return replace(self, d=float("inf"))


class QueryCounter:
    """Per-originator byte counter generating ``cnt`` values.

    "a device [can] generate 256 queries with increasing cnt value. The
    count can be reset at regular intervals" (Section 3.4).
    """

    def __init__(self, start: int = 0) -> None:
        if not 0 <= start < COUNTER_MODULUS:
            raise ValueError(f"start must be in [0, {COUNTER_MODULUS})")
        self._next = start

    def next_value(self) -> int:
        """Return the next counter value, wrapping at 256."""
        value = self._next
        self._next = (self._next + 1) % COUNTER_MODULUS
        return value

    def reset(self) -> None:
        """Periodic reset (e.g. daily, per the paper)."""
        self._next = 0


class QueryLog:
    """Hash table from originator id to the last seen ``cnt``.

    Space is O(m) worst case, the duplicate check is O(1) (Section 3.4).
    The mechanism assumes each device only cares about its *latest*
    query: a query is fresh iff its ``cnt`` differs from the logged one.
    """

    def __init__(self) -> None:
        self._last: Dict[int, int] = {}

    def seen(self, query: SkylineQuery) -> bool:
        """Has this exact query already been processed here?"""
        return self._last.get(query.origin) == query.cnt

    def record(self, query: SkylineQuery) -> None:
        """Log the query as this originator's latest."""
        self._last[query.origin] = query.cnt

    def check_and_record(self, query: SkylineQuery) -> bool:
        """Atomically: return True (and log) if the query is fresh,
        False if it is a duplicate to be ignored."""
        if self.seen(query):
            return False
        self.record(query)
        return True

    def __len__(self) -> int:
        return len(self._last)

    def __contains__(self, origin: int) -> bool:
        return origin in self._last
