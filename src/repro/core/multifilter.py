"""Multi-filter local skyline processing — the Section 7 extension made
first-class.

The paper closes with: "One research direction is to generalize the
filtering idea, using more than one filtering tuple. Important questions
include how many, and which, tuples should be used as filters, to
achieve the best data reduction rate."

This module answers operationally: *which* — the greedy max-union-volume
set of :func:`repro.core.filtering.select_filter_set`; *how many* — a
caller-chosen ``k``, with the trade-off measurable because every shipped
filter costs one tuple of bandwidth per device (the ablation bench
sweeps ``k``). The processing mirrors the single-filter Figure 4
pipeline: a short-circuit when the filter set dominates the device's
best-possible tuple, pruning of the local skyline, and dynamic promotion
of the *weakest* member of the set when a stronger local candidate
exists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from ..data.spatial import mindist_point_rect
from ..storage.relation import Relation
from .filtering import (
    Estimation,
    FilteringTuple,
    estimation_bounds,
    normalize_values,
    select_filter_set,
    vdr,
)
from .query import SkylineQuery
from .skyline import skyline_numpy

__all__ = ["MultiFilterResult", "local_skyline_multifilter", "prune_with_filters"]


@dataclass
class MultiFilterResult:
    """Outcome of a multi-filter local skyline evaluation.

    Mirrors :class:`~repro.core.local.LocalSkylineResult`, with a *set*
    of outgoing filters instead of a single one.
    """

    skyline: Relation
    unreduced_size: int
    skipped: Optional[str] = None
    updated_filters: Tuple[FilteringTuple, ...] = ()
    scanned: int = 0
    in_range: int = 0

    @property
    def reduced_size(self) -> int:
        """``|SK'_i|`` — tuples that actually travel."""
        return self.skyline.cardinality


def prune_with_filters(
    skyline: Relation, filters: Sequence[FilteringTuple]
) -> Relation:
    """Remove skyline members dominated by (or co-located with) any
    filter in the set."""
    if skyline.cardinality == 0 or not filters:
        return skyline
    values = skyline.normalized_values()
    schema = skyline.schema
    dominated = np.zeros(skyline.cardinality, dtype=bool)
    for flt in filters:
        f = np.asarray(normalize_values(flt.values, schema), dtype=np.float64)
        no_worse = (f[None, :] <= values).all(axis=1)
        better = (f[None, :] < values).any(axis=1)
        same_site = (skyline.xy[:, 0] == flt.site.x) & (
            skyline.xy[:, 1] == flt.site.y
        )
        dominated |= (no_worse & better) | same_site
    return skyline.take(np.nonzero(~dominated)[0])


def local_skyline_multifilter(
    relation: Relation,
    query: SkylineQuery,
    filters: Sequence[FilteringTuple] = (),
    k: Optional[int] = None,
    estimation: Estimation = Estimation.UNDER,
    over_margin: float = 0.2,
) -> MultiFilterResult:
    """Figure 4 generalized to a set of filtering tuples.

    Args:
        relation: The device's local relation.
        query: The distributed query.
        filters: Incoming filtering tuples (possibly empty).
        k: Target outgoing set size; defaults to ``max(len(filters), 1)``.
        estimation: Dominating-region bounding mode.
        over_margin: OVE margin.

    Returns:
        The reduced local skyline plus the promoted outgoing filter set.
    """
    schema = relation.schema
    empty = Relation.empty(schema)
    filters = tuple(filters)
    if k is None:
        k = max(len(filters), 1)
    if k < 1:
        raise ValueError("k must be >= 1")
    if relation.cardinality == 0:
        return MultiFilterResult(skyline=empty, unreduced_size=0,
                                 skipped="mbr", updated_filters=filters)
    if mindist_point_rect(query.pos, relation.mbr()) > query.d:
        return MultiFilterResult(skyline=empty, unreduced_size=0,
                                 skipped="mbr", updated_filters=filters)

    norm = relation.normalized_values()
    lows = norm.min(axis=0)
    local_worst = tuple(float(h) for h in norm.max(axis=0))
    skipped_dominated = False
    for flt in filters:
        f = np.asarray(normalize_values(flt.values, schema), dtype=np.float64)
        if (f <= lows).all() and (f < lows).any():
            skipped_dominated = True
            break

    in_range = relation.within(query.pos, query.d)
    scoped = relation.take(np.nonzero(in_range)[0])
    if scoped.cardinality == 0:
        return MultiFilterResult(
            skyline=empty, unreduced_size=0, updated_filters=filters,
            scanned=relation.cardinality, in_range=0,
        )
    sky = scoped.take(skyline_numpy(scoped.normalized_values()))
    unreduced = sky.cardinality
    if skipped_dominated:
        return MultiFilterResult(
            skyline=empty, unreduced_size=unreduced, skipped="dominated",
            updated_filters=filters,
            scanned=relation.cardinality, in_range=scoped.cardinality,
        )

    reduced = prune_with_filters(sky, filters)

    # Promotion: re-pick the best k-set from the union of the incoming
    # filters' sites and the surviving local skyline, under this
    # device's own bounds — the natural set-generalization of the
    # paper's "keep whichever tuple has the larger VDR".
    local_highs = local_worst if estimation is Estimation.UNDER else None
    bounds = estimation_bounds(
        schema, estimation, local_highs=local_highs, over_margin=over_margin
    )
    pool = reduced
    for flt in filters:
        pool = pool.union(
            Relation(
                schema,
                np.asarray([[flt.site.x, flt.site.y]], dtype=np.float64),
                np.asarray([flt.values], dtype=np.float64),
                np.asarray([flt.site.site_id], dtype=np.int64),
            )
        )
    if pool.cardinality:
        updated = tuple(
            select_filter_set(
                pool, k, estimation=estimation,
                over_margin=over_margin, local_highs=local_highs,
            )
        )
        # re-score under this device's bounds for honest VDR fields
        updated = tuple(
            FilteringTuple(
                site=f.site,
                vdr=vdr(normalize_values(f.values, schema), bounds),
            )
            for f in updated
        )
    else:
        updated = filters
    return MultiFilterResult(
        skyline=reduced,
        unreduced_size=unreduced,
        updated_filters=updated,
        scanned=relation.cardinality,
        in_range=scoped.cardinality,
    )
