"""Local skyline processing on a mobile device — Figure 4 of the paper.

The algorithm, per the paper:

1. **MBR check** — if ``mindist(pos_org, MBR_i) > d`` the device holds no
   relevant data and returns immediately.
2. **Domination short-circuit** — if the filtering tuple dominates the
   per-attribute local lower bounds ``(l_1, ..., l_n)`` (all ``<=``, one
   strict), every local tuple is dominated and the device returns an
   empty result after O(n) work. (The paper's pseudocode tests only
   ``<=``; the strictness requirement added here is needed for
   correctness when a local tuple *equals* the filter on every
   attribute — such a tuple is a distinct site and belongs in the
   skyline.)
3. **ID-based SFS scan** — the relation is scanned in its stored sorted
   order; tuples failing the spatial range check are skipped; dominance
   against the window compares small integer IDs only.
4. **Filter pass** — the filtering tuple removes dominated skyline
   members (and same-site duplicates of itself), and the max-VDR survivor
   is promoted to the new filtering tuple if it beats the incoming one
   (Section 3.4's dynamic update).

Every storage model has **two** implementations of this pipeline:

* a *reference* path that walks tuples row by row, exactly as the
  pseudocode reads — the ground truth for differential testing; and
* a *fast* path built on bounded-tile numpy kernels
  (:func:`_sfs_scan_sorted` for the sorted hybrid layout,
  :func:`_bnl_scan` for the unsorted value layouts) that produces
  bit-identical skylines, the same ``skipped`` decisions, and the same
  :class:`ComparisonCounter` / ``AccessStats`` totals, computed
  analytically instead of per comparison.

Pick the path per call (``path=``), per process
(:func:`configure_local_path`), or via the ``REPRO_LOCAL_PATH``
environment variable; the default is ``"fast"``. A separate vectorised
variant over raw relations (:func:`local_skyline_vectorized`) remains
for mixed-preference schemas and the large simulation experiments.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..data.spatial import mindist_point_rect
from ..storage.base import AccessStats, StorageModel
from ..storage.flat import FlatStorage
from ..storage.hybrid import HybridStorage
from ..storage.relation import Relation
from .dominance import ComparisonCounter
from .filtering import (
    Estimation,
    FilteringTuple,
    estimation_bounds,
    normalize_values,
    promote_filter,
    vdr,
    vdr_matrix,
)
from .query import SkylineQuery
from .skyline import skyline_numpy

__all__ = [
    "LocalSkylineResult",
    "LocalResultCache",
    "LOCAL_PATHS",
    "configure_local_path",
    "resolve_local_path",
    "local_skyline",
    "local_skyline_vectorized",
]

#: Recognized local-processing path names.
LOCAL_PATHS = ("fast", "reference")

#: Default candidate/window tile edge for the fast kernels. 512 keeps
#: every intermediate dominance matrix under ~256 KiB of bools while
#: leaving enough rows per tile to amortize numpy dispatch.
DEFAULT_BLOCK = 512

_PATH_OVERRIDE: Optional[str] = None


def _validate_path(path: str) -> str:
    if path not in LOCAL_PATHS:
        raise ValueError(f"unknown local path {path!r}; expected one of {LOCAL_PATHS}")
    return path


def configure_local_path(path: Optional[str]) -> None:
    """Set a process-wide local-processing path override.

    ``None`` clears the override, restoring environment/default
    resolution. The CLI's ``--local-path`` flag lands here.
    """
    global _PATH_OVERRIDE
    _PATH_OVERRIDE = _validate_path(path) if path is not None else None


def resolve_local_path(path: Optional[str] = None) -> str:
    """Resolve the effective path: explicit argument beats the
    :func:`configure_local_path` override beats ``REPRO_LOCAL_PATH``
    beats the ``"fast"`` default."""
    if path is not None:
        return _validate_path(path)
    if _PATH_OVERRIDE is not None:
        return _PATH_OVERRIDE
    env = os.environ.get("REPRO_LOCAL_PATH")
    if env:
        return _validate_path(env)
    return "fast"


class LocalResultCache:
    """Skyline-diagram-style memo of local skyline evaluations.

    The skyline-diagram idea (arXiv:1812.01663) precomputes, per region
    of query space, the invariant local answer; here each *exact* query
    signature is its own degenerate cell:
    ``(data_epoch, query position, distance of interest, filter)``. The
    hot paths this serves — continuous-subscription refreshes and
    repeated hot-region one-shots — re-issue byte-identical signatures,
    so the cell lookup is a dict hit and the device skips the whole SFS
    scan.

    Bit-identity contract: a hit returns the *same*
    :class:`LocalSkylineResult` the miss produced (relations and
    counters are never mutated downstream) and replays the
    ``AccessStats`` delta the original evaluation charged to the storage
    model, so physical-read accounting is indistinguishable from a
    re-run. Invalidation is by construction — the ``data_epoch`` in the
    key changes whenever ``apply_update`` swaps the relation — plus an
    explicit :meth:`invalidate` flush on update/crash so stale epochs
    don't occupy LRU slots.
    """

    __slots__ = ("maxsize", "hits", "misses", "invalidations", "_entries")

    def __init__(self, maxsize: int = 64):
        if maxsize < 1:
            raise ValueError("cache maxsize must be >= 1")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self._entries: OrderedDict = OrderedDict()

    @staticmethod
    def signature(
        data_epoch: int, query: SkylineQuery, flt: Optional[FilteringTuple]
    ) -> Tuple:
        """The cache cell for one evaluation. The filter contributes its
        full pruning identity (site location, values, id, VDR) — two
        queries with different filters may reduce differently."""
        flt_key = (
            None
            if flt is None
            else (flt.site.x, flt.site.y, flt.site.values, flt.site.site_id, flt.vdr)
        )
        return (data_epoch, query.pos, query.d, flt_key)

    def get(
        self, key: Tuple
    ) -> Optional[Tuple["LocalSkylineResult", Optional[AccessStats]]]:
        """The memoized ``(result, stats delta)`` for ``key``, or None."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(
        self,
        key: Tuple,
        result: "LocalSkylineResult",
        stats_delta: Optional[AccessStats],
    ) -> None:
        """Memoize one evaluation, evicting the least recently used."""
        self._entries[key] = (result, stats_delta)
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def invalidate(self) -> None:
        """Drop every entry (data update or crash)."""
        if self._entries:
            self._entries.clear()
        self.invalidations += 1

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when idle)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class LocalSkylineResult:
    """Outcome of one local skyline evaluation.

    Attributes:
        skyline: The reduced local skyline ``SK'_i`` to transmit.
        unreduced_size: ``|SK_i|`` before filter pruning (DRR needs it).
            The faithful storage paths report 0 when a skip fired (the
            device never computed the skyline); the vectorised path fills
            in the true ``|SK_i|`` even for a ``"dominated"`` skip, as a
            metric-only annotation for Formula (1).
        skipped: ``None`` if the relation was scanned, ``"mbr"`` if the
            spatial check rejected the whole relation, ``"dominated"`` if
            the filtering tuple did.
        updated_filter: The filtering tuple to forward onward — the
            incoming one, or a local tuple that beat it on VDR.
        comparisons: Operation counts for the device cost model.
        scanned: Number of tuples examined by the scan.
        in_range: Number of tuples that passed the spatial check.
    """

    skyline: Relation
    unreduced_size: int
    skipped: Optional[str] = None
    updated_filter: Optional[FilteringTuple] = None
    comparisons: ComparisonCounter = field(default_factory=ComparisonCounter)
    scanned: int = 0
    in_range: int = 0

    @property
    def reduced_size(self) -> int:
        """``|SK'_i|`` — what actually gets transmitted."""
        return self.skyline.cardinality


def local_skyline(
    storage: StorageModel,
    query: SkylineQuery,
    flt: Optional[FilteringTuple] = None,
    estimation: Estimation = Estimation.UNDER,
    over_margin: float = 0.2,
    path: Optional[str] = None,
    block: int = DEFAULT_BLOCK,
) -> LocalSkylineResult:
    """Run the Figure 4 algorithm against any storage model.

    Dispatches to the ID-based path for :class:`HybridStorage`, a raw
    value BNL for :class:`FlatStorage`, and an accessor-based BNL for the
    pointer layouts (domain / ring storage), whose per-read indirection
    costs are recorded in ``storage.stats``.

    ``path`` picks between the tiled numpy kernels (``"fast"``) and the
    row-at-a-time loops (``"reference"``); both produce bit-identical
    results and counters (see :func:`resolve_local_path` for the default
    chain). ``block`` bounds the fast kernels' tile edge.

    The faithful storage paths assume the paper's all-MIN schemas; for
    mixed-preference schemas use :func:`local_skyline_vectorized`, which
    works in normalized (minimization) space.
    """
    if not storage.schema.all_min:
        raise ValueError(
            "the faithful storage paths assume minimized attributes; "
            "use local_skyline_vectorized for mixed-preference schemas"
        )
    fast = resolve_local_path(path) == "fast"
    if isinstance(storage, HybridStorage):
        if fast:
            return _local_skyline_hybrid_fast(
                storage, query, flt, estimation, over_margin, block
            )
        return _local_skyline_hybrid(storage, query, flt, estimation, over_margin)
    if isinstance(storage, FlatStorage):
        if fast:
            return _local_skyline_values_fast(
                storage, storage.values_matrix(), query, flt, estimation,
                over_margin, count_value_reads=True, block=block,
            )
        return _local_skyline_values(
            storage, storage.values_matrix(), query, flt, estimation, over_margin,
            count_value_reads=True, rows=storage.values_rows(),
        )
    if fast:
        return _local_skyline_generic_fast(
            storage, query, flt, estimation, over_margin, block
        )
    return _local_skyline_generic(storage, query, flt, estimation, over_margin)


# ---------------------------------------------------------------------------
# Tiled dominance kernels (the fast path's engine)
# ---------------------------------------------------------------------------


def _dom_matrix(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``out[i, j]`` — row ``a[i]`` dominates row ``b[j]``.

    Attribute-at-a-time 2-D broadcasts (the repo's established fast
    idiom — materially quicker than one 3-D broadcast for the paper's
    2–5 attribute schemas). Works on integer ID rows and raw value rows
    alike; dominance is all-``<=`` with at least one ``<``.
    """
    no_worse = np.ones((a.shape[0], b.shape[0]), dtype=bool)
    better = np.zeros((a.shape[0], b.shape[0]), dtype=bool)
    for j in range(a.shape[1]):
        col_a = a[:, j][:, None]
        col_b = b[:, j][None, :]
        no_worse &= col_a <= col_b
        better |= col_a < col_b
    return no_worse & better


def _tile_spans(total: int, block: int) -> List[Tuple[int, int]]:
    """Candidate tile boundaries: geometric ramp from 64 up to ``block``.

    The first tiles are deliberately small so the window forms cheaply
    and can prune subsequent (full-size) tiles; starting at ``block``
    would pay a dense tile-vs-tile pass before any window exists.
    """
    spans = []
    start = 0
    size = min(64, block)
    while start < total:
        stop = min(start + size, total)
        spans.append((start, stop))
        start = stop
        size = min(size * 2, block)
    return spans


def _sfs_scan_sorted(ids: np.ndarray, block: int) -> Tuple[np.ndarray, int]:
    """SFS window scan over rows already in lexicographic stored order.

    ``ids`` holds the candidate rows (hybrid ID tuples) in scan order.
    Because the stored order is lexicographic, a dominator always
    precedes what it dominates and equal rows never dominate — so the
    window is append-only (no eviction) and, within a tile, the
    tile-vs-tile dominance matrix is strictly upper-triangular for free.

    Membership shortcut (transitivity): a candidate is dominated by the
    current window iff it is dominated by *any* earlier surviving
    candidate — every dominance chain grounds at a window member — so
    ``~dom.any(axis=0)`` decides membership without a sequential walk.

    Returns ``(window, examined)`` where ``window`` indexes into ``ids``
    (in window order) and ``examined`` is the exact number of
    window-member examinations the reference loop would perform: each
    candidate examines members in window order, stopping at its first
    dominator, so a dominated candidate contributes its dominator's
    1-based window position and a member contributes the window size at
    its admission time.
    """
    m_total = ids.shape[0]
    win = np.empty(0, dtype=np.int64)
    examined_total = 0
    for start, stop in _tile_spans(m_total, block):
        tile_idx = np.arange(start, stop, dtype=np.int64)
        tile = ids[start:stop]
        m = stop - start
        examined = np.zeros(m, dtype=np.int64)
        alive = np.ones(m, dtype=bool)
        for wstart in range(0, len(win), block):
            sub = np.nonzero(alive)[0]
            if sub.size == 0:
                break
            chunk = win[wstart:wstart + block]
            dom = _dom_matrix(ids[chunk], tile[sub])
            anyd = dom.any(axis=0)
            first = dom.argmax(axis=0)
            examined[sub] += np.where(anyd, first + 1, len(chunk))
            alive[sub[anyd]] = False
        sub = np.nonzero(alive)[0]
        if sub.size:
            sub_ids = tile[sub]
            dom = _dom_matrix(sub_ids, sub_ids)  # upper-triangular by sort order
            member = ~dom.any(axis=0)
            ranks = member.cumsum()
            dom_members = dom[member, :]
            if dom_members.shape[0]:
                first = dom_members.argmax(axis=0)
            else:
                first = np.zeros(sub.size, dtype=np.int64)
            examined[sub] += np.where(member, ranks - 1, first + 1)
            win = np.concatenate([win, tile_idx[sub[member]]])
        examined_total += int(examined.sum())
    return win, examined_total


def _bnl_scan(values: np.ndarray, block: int) -> Tuple[np.ndarray, int]:
    """BNL window scan (with eviction) over unsorted candidate rows.

    ``values`` holds the candidate rows in scan order. The reference BNL
    examines every *present* window member per candidate (evicting those
    the candidate dominates), breaking at the first member that
    dominates the candidate; window order is addition order.

    The kernel exploits the same transitivity shortcut as
    :func:`_sfs_scan_sorted` — a candidate survives iff no earlier
    in-range candidate dominates it (eviction never loses a dominator:
    the evictor dominates whatever its victim dominated) — so survival,
    eviction times, and exact examination counts all fall out of tiled
    dominance matrices:

    * ``added[t]``: no tile-start window member and no earlier tile row
      dominates ``t``.
    * eviction time of a member: the first *added* tile row dominating
      it (evictions by rejected candidates never commit — a dominated
      candidate abandons its pass).
    * a member is present during candidate ``t``'s pass iff its eviction
      time is ``>= t`` (the evictor itself still examines its victims).

    Returns ``(window, examined)`` with the same contract as
    :func:`_sfs_scan_sorted`.
    """
    m_total = values.shape[0]
    win = np.empty(0, dtype=np.int64)
    examined_total = 0
    for start, stop in _tile_spans(m_total, block):
        tile_idx = np.arange(start, stop, dtype=np.int64)
        tile = values[start:stop]
        m = stop - start
        t_pos = np.arange(m)

        # Window-vs-tile dominance, chunked over the window.
        chunks: List[Tuple[np.ndarray, np.ndarray]] = []
        win_dom_any = np.zeros(m, dtype=bool)
        for wstart in range(0, len(win), block):
            chunk = win[wstart:wstart + block]
            dom_wt = _dom_matrix(values[chunk], tile)  # member dominates cand.
            chunks.append((chunk, dom_wt))
            win_dom_any |= dom_wt.any(axis=0)

        # Only rows the tile-start window leaves alone can ever be added
        # or evict — a window-dominated row is never added, and any
        # dominator of a non-window-dominated row is itself
        # non-window-dominated (its own dominators would transitively
        # reach the row). Restricting the intra-tile matrices to this
        # subset keeps per-tile work near-linear on dominated-heavy data.
        cand = np.nonzero(~win_dom_any)[0]
        examined = np.zeros(m, dtype=np.int64)
        done = np.zeros(m, dtype=bool)
        if cand.size:
            dom_ct = _dom_matrix(tile[cand], tile)  # [i, t]: cand[i] dom t
            dom_cc = dom_ct[:, cand]
            earlier = cand[:, None] < cand[None, :]  # [i, k]: cand[i] < cand[k]
            added_c = ~(dom_cc & earlier).any(axis=0)
            # Eviction time of cand[k]: first added cand row after it
            # that dominates it (evictions by rejected candidates never
            # commit — a dominated candidate abandons its pass).
            evict_cc = added_c[:, None] & dom_cc & earlier.T
            ev_c = np.where(
                evict_cc.any(axis=0), cand[evict_cc.argmax(axis=0)], m
            )
        else:
            dom_ct = np.zeros((0, m), dtype=bool)
            added_c = np.zeros(0, dtype=bool)
            ev_c = np.zeros(0, dtype=np.int64)
        added = np.zeros(m, dtype=bool)
        added[cand] = added_c

        survivors: List[np.ndarray] = []
        for chunk, dom_wt in chunks:
            if cand.size:
                dom_cw = _dom_matrix(tile[cand], values[chunk])
                evict_w = added_c[:, None] & dom_cw  # [i, member]
                ev_w = np.where(
                    evict_w.any(axis=0), cand[evict_w.argmax(axis=0)], m
                )
            else:
                ev_w = np.full(len(chunk), m, dtype=np.int64)
            present = ev_w[:, None] >= t_pos[None, :]  # [member, t]
            hit = present & dom_wt
            ranks = present.cumsum(axis=0)
            anyd = hit.any(axis=0)
            first = hit.argmax(axis=0)
            at_dominator = ranks[first, t_pos]
            examined += np.where(done, 0, np.where(anyd, at_dominator, ranks[-1]))
            done |= anyd
            survivors.append(chunk[ev_w == m])

        # Intra-tile pass: earlier added rows still present at time t.
        if cand.size:
            present = (
                added_c[:, None]
                & (ev_c[:, None] >= t_pos[None, :])
                & (cand[:, None] < t_pos[None, :])
            )
            hit = present & dom_ct
            ranks = present.cumsum(axis=0)
            anyd = hit.any(axis=0)
            first = hit.argmax(axis=0)
            at_dominator = ranks[first, t_pos]
            examined += np.where(
                done, 0, np.where(anyd, at_dominator, ranks[-1])
            )
            survivors.append(tile_idx[cand[added_c & (ev_c == m)]])

        examined_total += int(examined.sum())
        win = np.concatenate(survivors) if survivors else win
    return win, examined_total


# ---------------------------------------------------------------------------
# Hybrid storage: ID-based SFS (the paper's optimized path)
# ---------------------------------------------------------------------------


def _hybrid_prologue(
    storage: HybridStorage,
    query: SkylineQuery,
    flt: Optional[FilteringTuple],
    counter: ComparisonCounter,
):
    """Shared steps 1–2 of Figure 4 in ID space.

    Returns ``(skip_result, thr_ge, thr_gt)``; ``skip_result`` is a
    finished :class:`LocalSkylineResult` when a skip fired.
    """
    empty = Relation.empty(storage.schema)
    if storage.cardinality == 0:
        return (
            LocalSkylineResult(skyline=empty, unreduced_size=0, skipped="mbr",
                               updated_filter=flt, comparisons=counter),
            None, None,
        )
    if mindist_point_rect(query.pos, storage.mbr) > query.d:
        return (
            LocalSkylineResult(skyline=empty, unreduced_size=0, skipped="mbr",
                               updated_filter=flt, comparisons=counter),
            None, None,
        )
    thr_ge: Optional[Tuple[int, ...]] = None
    thr_gt: Optional[Tuple[int, ...]] = None
    if flt is not None:
        # ID-space image of the filter: local id >= thr_ge[j] iff the
        # local value >= flt value; id >= thr_gt[j] iff strictly greater.
        thr_ge = storage.encode_threshold(flt.values)
        thr_gt = storage.encode_threshold(flt.values, side="right")
        counter.count_id(storage.dimensions)
        # Short-circuit: the filter dominates the virtual best local
        # tuple (l_1..l_n) => the whole relation is dominated.
        if all(t == 0 for t in thr_ge) and any(t == 0 for t in thr_gt):
            return (
                LocalSkylineResult(skyline=empty, unreduced_size=0,
                                   skipped="dominated", updated_filter=flt,
                                   comparisons=counter),
                None, None,
            )
    return None, thr_ge, thr_gt


def _local_skyline_hybrid(
    storage: HybridStorage,
    query: SkylineQuery,
    flt: Optional[FilteringTuple],
    estimation: Estimation,
    over_margin: float,
) -> LocalSkylineResult:
    counter = ComparisonCounter()
    skip, thr_ge, thr_gt = _hybrid_prologue(storage, query, flt, counter)
    if skip is not None:
        return skip

    dims = storage.dimensions
    ids = storage.ids_rows()
    xy = storage.xy
    dx = xy[:, 0] - query.pos[0]
    dy = xy[:, 1] - query.pos[1]
    in_range_mask = (dx * dx + dy * dy) <= query.d * query.d
    counter.count_distance(storage.cardinality)

    window: List[int] = []
    for row in range(storage.cardinality):
        if not in_range_mask[row]:
            continue
        t_ids = ids[row]
        dominated = False
        for w in window:
            w_ids = ids[w]
            counter.count_id(dims)
            # Stored order is lexicographic, so window members can never
            # be dominated by later tuples — no eviction pass needed.
            no_worse = True
            better = False
            for a, b in zip(w_ids, t_ids):
                if a > b:
                    no_worse = False
                    break
                if a < b:
                    better = True
            if no_worse and better:
                dominated = True
                break
        if not dominated:
            window.append(row)

    unreduced = len(window)
    in_range = int(in_range_mask.sum())

    # Filter pass over SK_i (paper: strict-dominance removal + same-site
    # duplicate removal), in ID space.
    survivors: List[int] = []
    if flt is not None:
        fx, fy = flt.site.x, flt.site.y
        for row in window:
            t_ids = ids[row]
            counter.count_id(dims)
            if xy[row, 0] == fx and xy[row, 1] == fy:
                continue  # same site as the filter: a duplicate copy
            ge_all = all(t >= g for t, g in zip(t_ids, thr_ge))
            gt_any = any(t >= g for t, g in zip(t_ids, thr_gt))
            if ge_all and gt_any:
                continue  # dominated by the filtering tuple
            survivors.append(row)
    else:
        survivors = window

    reduced = _rows_to_relation(storage, survivors)
    updated = _promote_filter(
        reduced, flt, estimation, over_margin, storage, counter
    )
    return LocalSkylineResult(
        skyline=reduced,
        unreduced_size=unreduced,
        updated_filter=updated,
        comparisons=counter,
        scanned=storage.cardinality,
        in_range=in_range,
    )


def _local_skyline_hybrid_fast(
    storage: HybridStorage,
    query: SkylineQuery,
    flt: Optional[FilteringTuple],
    estimation: Estimation,
    over_margin: float,
    block: int,
) -> LocalSkylineResult:
    """Tiled-kernel twin of :func:`_local_skyline_hybrid`."""
    counter = ComparisonCounter()
    skip, thr_ge, thr_gt = _hybrid_prologue(storage, query, flt, counter)
    if skip is not None:
        return skip

    dims = storage.dimensions
    ids_mat = storage.ids
    xy = storage.xy
    dx = xy[:, 0] - query.pos[0]
    dy = xy[:, 1] - query.pos[1]
    in_range_mask = (dx * dx + dy * dy) <= query.d * query.d
    counter.count_distance(storage.cardinality)

    cand = np.nonzero(in_range_mask)[0]
    win_pos, examined = _sfs_scan_sorted(ids_mat[cand], block)
    counter.count_id(dims * examined)
    window = cand[win_pos]
    unreduced = int(window.size)

    if flt is not None and unreduced:
        # The reference charges dims ID comparisons per window member
        # before the same-site test, so the bulk charge ignores masks.
        counter.count_id(dims * unreduced)
        w_ids = ids_mat[window]
        ge_all = (w_ids >= np.asarray(thr_ge, dtype=np.int64)[None, :]).all(axis=1)
        gt_any = (w_ids >= np.asarray(thr_gt, dtype=np.int64)[None, :]).any(axis=1)
        same_site = (xy[window, 0] == flt.site.x) & (xy[window, 1] == flt.site.y)
        survivors = window[~same_site & ~(ge_all & gt_any)]
    else:
        survivors = window

    reduced = _rows_to_relation(storage, survivors)
    updated = _promote_filter(
        reduced, flt, estimation, over_margin, storage, counter
    )
    return LocalSkylineResult(
        skyline=reduced,
        unreduced_size=unreduced,
        updated_filter=updated,
        comparisons=counter,
        scanned=storage.cardinality,
        in_range=int(in_range_mask.sum()),
    )


def _rows_to_relation(storage: StorageModel, rows: Sequence[int]) -> Relation:
    if len(rows) == 0:
        return Relation.empty(storage.schema)
    idx = np.asarray(rows, dtype=np.int64)
    values = storage.values_matrix()[idx]
    return Relation(storage.schema, storage.xy[idx], values, storage.site_ids[idx])


# ---------------------------------------------------------------------------
# Flat / pointer storage: BNL over raw values
# ---------------------------------------------------------------------------


def _values_prologue(
    storage: StorageModel,
    query: SkylineQuery,
    flt: Optional[FilteringTuple],
    counter: ComparisonCounter,
) -> Optional[LocalSkylineResult]:
    """Shared steps 1–2 of Figure 4 in value space."""
    empty = Relation.empty(storage.schema)
    if storage.cardinality == 0:
        return LocalSkylineResult(skyline=empty, unreduced_size=0, skipped="mbr",
                                  updated_filter=flt, comparisons=counter)
    if mindist_point_rect(query.pos, storage.mbr) > query.d:
        return LocalSkylineResult(skyline=empty, unreduced_size=0, skipped="mbr",
                                  updated_filter=flt, comparisons=counter)
    if flt is not None:
        lows = storage.local_bounds()[0]
        counter.count_value(storage.dimensions)
        if all(f <= lo for f, lo in zip(flt.values, lows)) and any(
            f < lo for f, lo in zip(flt.values, lows)
        ):
            return LocalSkylineResult(
                skyline=empty, unreduced_size=0, skipped="dominated",
                updated_filter=flt, comparisons=counter,
            )
    return None


def _local_skyline_values(
    storage: StorageModel,
    values: np.ndarray,
    query: SkylineQuery,
    flt: Optional[FilteringTuple],
    estimation: Estimation,
    over_margin: float,
    count_value_reads: bool,
    rows: Optional[List[List[float]]] = None,
) -> LocalSkylineResult:
    counter = ComparisonCounter()
    skip = _values_prologue(storage, query, flt, counter)
    if skip is not None:
        return skip

    dims = storage.dimensions
    xy = storage.xy
    dx = xy[:, 0] - query.pos[0]
    dy = xy[:, 1] - query.pos[1]
    in_range_mask = (dx * dx + dy * dy) <= query.d * query.d
    counter.count_distance(storage.cardinality)

    if rows is None:
        rows = values.tolist()
    window: List[int] = []
    for row in range(storage.cardinality):
        if not in_range_mask[row]:
            continue
        v = rows[row]
        if count_value_reads:
            storage.stats.value_reads += dims
        dominated = False
        survivors: List[int] = []
        changed = False
        for w in window:
            wv = rows[w]
            counter.count_value(dims)
            if _dom(wv, v):
                dominated = True
                break
            if _dom(v, wv):
                changed = True  # window member evicted
                continue
            survivors.append(w)
        if dominated:
            continue
        if changed:
            window = survivors
        window.append(row)

    unreduced = len(window)
    survivors = []
    if flt is not None:
        fvals = list(flt.values)
        fx, fy = flt.site.x, flt.site.y
        for row in window:
            counter.count_value(dims)
            if xy[row, 0] == fx and xy[row, 1] == fy:
                continue
            if _dom(fvals, rows[row]):
                continue
            survivors.append(row)
    else:
        survivors = window

    reduced = _rows_to_relation(storage, survivors)
    updated = _promote_filter(
        reduced, flt, estimation, over_margin, storage, counter
    )
    return LocalSkylineResult(
        skyline=reduced,
        unreduced_size=unreduced,
        updated_filter=updated,
        comparisons=counter,
        scanned=storage.cardinality,
        in_range=int(in_range_mask.sum()),
    )


def _local_skyline_values_fast(
    storage: StorageModel,
    values: np.ndarray,
    query: SkylineQuery,
    flt: Optional[FilteringTuple],
    estimation: Estimation,
    over_margin: float,
    count_value_reads: bool,
    block: int,
) -> LocalSkylineResult:
    """Tiled-kernel twin of :func:`_local_skyline_values`."""
    counter = ComparisonCounter()
    skip = _values_prologue(storage, query, flt, counter)
    if skip is not None:
        return skip

    dims = storage.dimensions
    xy = storage.xy
    dx = xy[:, 0] - query.pos[0]
    dy = xy[:, 1] - query.pos[1]
    in_range_mask = (dx * dx + dy * dy) <= query.d * query.d
    counter.count_distance(storage.cardinality)

    cand = np.nonzero(in_range_mask)[0]
    if count_value_reads:
        storage.stats.value_reads += dims * int(cand.size)
    win_pos, examined = _bnl_scan(values[cand], block)
    counter.count_value(dims * examined)
    window = cand[win_pos]
    unreduced = int(window.size)

    if flt is not None and unreduced:
        counter.count_value(dims * unreduced)
        fvals = np.asarray(flt.values, dtype=np.float64)[None, :]
        wvals = values[window]
        flt_dom = (fvals <= wvals).all(axis=1) & (fvals < wvals).any(axis=1)
        same_site = (xy[window, 0] == flt.site.x) & (xy[window, 1] == flt.site.y)
        survivors = window[~same_site & ~flt_dom]
    else:
        survivors = window

    reduced = _rows_to_relation(storage, survivors)
    updated = _promote_filter(
        reduced, flt, estimation, over_margin, storage, counter
    )
    return LocalSkylineResult(
        skyline=reduced,
        unreduced_size=unreduced,
        updated_filter=updated,
        comparisons=counter,
        scanned=storage.cardinality,
        in_range=int(in_range_mask.sum()),
    )


def _local_skyline_generic(
    storage: StorageModel,
    query: SkylineQuery,
    flt: Optional[FilteringTuple],
    estimation: Estimation,
    over_margin: float,
) -> LocalSkylineResult:
    """BNL through ``get_value`` so pointer layouts pay their real
    per-read indirection costs (recorded in ``storage.stats``)."""
    n, dims = storage.cardinality, storage.dimensions
    values = np.empty((n, dims), dtype=np.float64)
    for row in range(n):
        for attr in range(dims):
            values[row, attr] = storage.get_value(row, attr)
    return _local_skyline_values(
        storage, values, query, flt, estimation, over_margin,
        count_value_reads=False,
    )


def _local_skyline_generic_fast(
    storage: StorageModel,
    query: SkylineQuery,
    flt: Optional[FilteringTuple],
    estimation: Estimation,
    over_margin: float,
    block: int,
) -> LocalSkylineResult:
    """Fast accessor path: one bulk read with analytic access charges
    (``StorageModel.read_all_values``) in place of the per-cell
    ``get_value`` loop, then the tiled BNL."""
    values = storage.read_all_values()
    return _local_skyline_values_fast(
        storage, values, query, flt, estimation, over_margin,
        count_value_reads=False, block=block,
    )


def _dom(a, b) -> bool:
    no_worse = True
    better = False
    for x, y in zip(a, b):
        if x > y:
            no_worse = False
            break
        if x < y:
            better = True
    return no_worse and better


# ---------------------------------------------------------------------------
# Filter promotion (Section 3.4)
# ---------------------------------------------------------------------------


def _promote_filter(
    reduced: Relation,
    flt: Optional[FilteringTuple],
    estimation: Estimation,
    over_margin: float,
    storage: StorageModel,
    counter: ComparisonCounter,
) -> Optional[FilteringTuple]:
    """Pick the max-VDR local survivor; keep whichever of it and the
    incoming filter has the larger VDR under this device's own bounds."""
    if reduced.cardinality == 0:
        return flt
    local_highs = (
        storage.local_bounds()[1] if estimation is Estimation.UNDER else None
    )
    bounds = estimation_bounds(
        storage.schema, estimation, local_highs=local_highs, over_margin=over_margin
    )
    counter.count_value(reduced.cardinality)
    return promote_filter(reduced, flt, bounds)


# ---------------------------------------------------------------------------
# Vectorised variant (identical output, used by the big experiments)
# ---------------------------------------------------------------------------


def local_skyline_vectorized(
    relation: Relation,
    query: SkylineQuery,
    flt: Optional[FilteringTuple] = None,
    estimation: Estimation = Estimation.UNDER,
    over_margin: float = 0.2,
) -> LocalSkylineResult:
    """Numpy implementation of the Figure 4 pipeline over a raw relation.

    Produces the same ``SK'_i``, ``|SK_i|`` and promoted filter as the
    faithful paths, but in vectorised form; the simulation experiments
    use it so MANET-scale runs stay tractable. Operation counters are not
    populated — the device cost model estimates them analytically.
    """
    counter = ComparisonCounter()
    schema = relation.schema
    empty = Relation.empty(schema)
    if relation.cardinality == 0:
        return LocalSkylineResult(skyline=empty, unreduced_size=0, skipped="mbr",
                                  updated_filter=flt, comparisons=counter)
    if mindist_point_rect(query.pos, relation.mbr()) > query.d:
        return LocalSkylineResult(skyline=empty, unreduced_size=0, skipped="mbr",
                                  updated_filter=flt, comparisons=counter)

    # All dominance work happens in minimization space so MAX attributes
    # are handled uniformly (the paper assumes all-MIN; this generalizes).
    # The normalized view and both bounds are cached on the (immutable)
    # relation, so repeated queries against one relation pay them once.
    norm = relation.normalized_values()
    lows = np.asarray(relation.normalized_best(), dtype=np.float64)
    local_worst = relation.normalized_worst()
    flt_norm = (
        np.asarray(normalize_values(flt.values, schema), dtype=np.float64)
        if flt is not None
        else None
    )
    skipped_dominated = False
    if flt_norm is not None:
        if (flt_norm <= lows).all() and (flt_norm < lows).any():
            # The device would stop here after O(n) work (Figure 4); the
            # unreduced skyline size is still computed below because the
            # DRR metric (Formula 1) needs |SK_i| — the cost model keys
            # on ``skipped`` and charges only the O(n) check.
            skipped_dominated = True

    in_range = relation.within(query.pos, query.d)
    scoped = relation.take(np.nonzero(in_range)[0])
    if scoped.cardinality == 0:
        return LocalSkylineResult(
            skyline=empty, unreduced_size=0, updated_filter=flt,
            comparisons=counter, scanned=relation.cardinality, in_range=0,
        )
    sky_idx = skyline_numpy(scoped.normalized_values())
    sky = scoped.take(sky_idx)
    unreduced = sky.cardinality
    if skipped_dominated:
        return LocalSkylineResult(
            skyline=empty, unreduced_size=unreduced, skipped="dominated",
            updated_filter=flt, comparisons=counter,
            scanned=relation.cardinality, in_range=scoped.cardinality,
        )

    if flt_norm is not None:
        sky_norm = sky.normalized_values()
        no_worse = (flt_norm[None, :] <= sky_norm).all(axis=1)
        better = (flt_norm[None, :] < sky_norm).any(axis=1)
        same_site = (sky.xy[:, 0] == flt.site.x) & (sky.xy[:, 1] == flt.site.y)
        keep = ~((no_worse & better) | same_site)
        sky = sky.take(np.nonzero(keep)[0])

    local_highs = local_worst if estimation is Estimation.UNDER else None
    if sky.cardinality:
        bounds = estimation_bounds(
            schema, estimation, local_highs=local_highs,
            over_margin=over_margin,
        )
        scores = vdr_matrix(sky.normalized_values(), bounds)
        best = int(np.argmax(scores))
        candidate = FilteringTuple(site=sky.row(best), vdr=float(scores[best]))
        if flt is None or candidate.vdr > vdr(
            normalize_values(flt.values, schema), bounds
        ):
            updated = candidate
        else:
            updated = flt
    else:
        updated = flt

    return LocalSkylineResult(
        skyline=sky,
        unreduced_size=unreduced,
        updated_filter=updated,
        comparisons=counter,
        scanned=relation.cardinality,
        in_range=scoped.cardinality,
    )
