"""Local skyline processing on a mobile device — Figure 4 of the paper.

The algorithm, per the paper:

1. **MBR check** — if ``mindist(pos_org, MBR_i) > d`` the device holds no
   relevant data and returns immediately.
2. **Domination short-circuit** — if the filtering tuple dominates the
   per-attribute local lower bounds ``(l_1, ..., l_n)`` (all ``<=``, one
   strict), every local tuple is dominated and the device returns an
   empty result after O(n) work. (The paper's pseudocode tests only
   ``<=``; the strictness requirement added here is needed for
   correctness when a local tuple *equals* the filter on every
   attribute — such a tuple is a distinct site and belongs in the
   skyline.)
3. **ID-based SFS scan** — the relation is scanned in its stored sorted
   order; tuples failing the spatial range check are skipped; dominance
   against the window compares small integer IDs only.
4. **Filter pass** — the filtering tuple removes dominated skyline
   members (and same-site duplicates of itself), and the max-VDR survivor
   is promoted to the new filtering tuple if it beats the incoming one
   (Section 3.4's dynamic update).

Three faithful variants cover the storage models (hybrid / flat /
pointer-based), plus a vectorised variant with identical output used by
the large simulation experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..data.spatial import mindist_point_rect
from ..storage.base import StorageModel
from ..storage.flat import FlatStorage
from ..storage.hybrid import HybridStorage
from ..storage.relation import Relation
from .dominance import ComparisonCounter
from .filtering import (
    Estimation,
    FilteringTuple,
    estimation_bounds,
    normalize_values,
    vdr,
    vdr_matrix,
)
from .query import SkylineQuery
from .skyline import skyline_numpy

__all__ = ["LocalSkylineResult", "local_skyline", "local_skyline_vectorized"]


@dataclass
class LocalSkylineResult:
    """Outcome of one local skyline evaluation.

    Attributes:
        skyline: The reduced local skyline ``SK'_i`` to transmit.
        unreduced_size: ``|SK_i|`` before filter pruning (DRR needs it).
            The faithful storage paths report 0 when a skip fired (the
            device never computed the skyline); the vectorised path fills
            in the true ``|SK_i|`` even for a ``"dominated"`` skip, as a
            metric-only annotation for Formula (1).
        skipped: ``None`` if the relation was scanned, ``"mbr"`` if the
            spatial check rejected the whole relation, ``"dominated"`` if
            the filtering tuple did.
        updated_filter: The filtering tuple to forward onward — the
            incoming one, or a local tuple that beat it on VDR.
        comparisons: Operation counts for the device cost model.
        scanned: Number of tuples examined by the scan.
        in_range: Number of tuples that passed the spatial check.
    """

    skyline: Relation
    unreduced_size: int
    skipped: Optional[str] = None
    updated_filter: Optional[FilteringTuple] = None
    comparisons: ComparisonCounter = field(default_factory=ComparisonCounter)
    scanned: int = 0
    in_range: int = 0

    @property
    def reduced_size(self) -> int:
        """``|SK'_i|`` — what actually gets transmitted."""
        return self.skyline.cardinality


def local_skyline(
    storage: StorageModel,
    query: SkylineQuery,
    flt: Optional[FilteringTuple] = None,
    estimation: Estimation = Estimation.UNDER,
    over_margin: float = 0.2,
) -> LocalSkylineResult:
    """Run the Figure 4 algorithm against any storage model.

    Dispatches to the ID-based path for :class:`HybridStorage`, a raw
    value BNL for :class:`FlatStorage`, and an accessor-based BNL for the
    pointer layouts (domain / ring storage), whose per-read indirection
    costs are recorded in ``storage.stats``.

    The faithful storage paths assume the paper's all-MIN schemas; for
    mixed-preference schemas use :func:`local_skyline_vectorized`, which
    works in normalized (minimization) space.
    """
    if not storage.schema.all_min:
        raise ValueError(
            "the faithful storage paths assume minimized attributes; "
            "use local_skyline_vectorized for mixed-preference schemas"
        )
    if isinstance(storage, HybridStorage):
        return _local_skyline_hybrid(storage, query, flt, estimation, over_margin)
    if isinstance(storage, FlatStorage):
        return _local_skyline_values(
            storage, storage.values_matrix(), query, flt, estimation, over_margin,
            count_value_reads=True,
        )
    return _local_skyline_generic(storage, query, flt, estimation, over_margin)


# ---------------------------------------------------------------------------
# Hybrid storage: ID-based SFS (the paper's optimized path)
# ---------------------------------------------------------------------------


def _local_skyline_hybrid(
    storage: HybridStorage,
    query: SkylineQuery,
    flt: Optional[FilteringTuple],
    estimation: Estimation,
    over_margin: float,
) -> LocalSkylineResult:
    counter = ComparisonCounter()
    empty = Relation.empty(storage.schema)
    if storage.cardinality == 0:
        return LocalSkylineResult(skyline=empty, unreduced_size=0, skipped="mbr",
                                  updated_filter=flt, comparisons=counter)
    if mindist_point_rect(query.pos, storage.mbr) > query.d:
        return LocalSkylineResult(skyline=empty, unreduced_size=0, skipped="mbr",
                                  updated_filter=flt, comparisons=counter)

    dims = storage.dimensions
    thr_ge: Optional[Tuple[int, ...]] = None
    thr_gt: Optional[Tuple[int, ...]] = None
    if flt is not None:
        # ID-space image of the filter: local id >= thr_ge[j] iff the
        # local value >= flt value; id >= thr_gt[j] iff strictly greater.
        thr_ge = storage.encode_threshold(flt.values)
        thr_gt = tuple(
            int(np.searchsorted(storage.domain(j), flt.values[j], side="right"))
            for j in range(dims)
        )
        counter.count_id(dims)
        # Short-circuit: the filter dominates the virtual best local
        # tuple (l_1..l_n) => the whole relation is dominated.
        if all(t == 0 for t in thr_ge) and any(t == 0 for t in thr_gt):
            return LocalSkylineResult(
                skyline=empty, unreduced_size=0, skipped="dominated",
                updated_filter=flt, comparisons=counter,
            )

    ids = storage.ids.tolist()
    xy = storage.xy
    dx = xy[:, 0] - query.pos[0]
    dy = xy[:, 1] - query.pos[1]
    in_range_mask = (dx * dx + dy * dy) <= query.d * query.d
    counter.count_distance(storage.cardinality)

    window: List[int] = []
    for row in range(storage.cardinality):
        if not in_range_mask[row]:
            continue
        t_ids = ids[row]
        dominated = False
        for w in window:
            w_ids = ids[w]
            counter.count_id(dims)
            # Stored order is lexicographic, so window members can never
            # be dominated by later tuples — no eviction pass needed.
            no_worse = True
            better = False
            for a, b in zip(w_ids, t_ids):
                if a > b:
                    no_worse = False
                    break
                if a < b:
                    better = True
            if no_worse and better:
                dominated = True
                break
        if not dominated:
            window.append(row)

    unreduced = len(window)
    in_range = int(in_range_mask.sum())

    # Filter pass over SK_i (paper: strict-dominance removal + same-site
    # duplicate removal), in ID space.
    survivors: List[int] = []
    if flt is not None:
        fx, fy = flt.site.x, flt.site.y
        for row in window:
            t_ids = ids[row]
            counter.count_id(dims)
            if xy[row, 0] == fx and xy[row, 1] == fy:
                continue  # same site as the filter: a duplicate copy
            ge_all = all(t >= g for t, g in zip(t_ids, thr_ge))
            gt_any = any(t >= g for t, g in zip(t_ids, thr_gt))
            if ge_all and gt_any:
                continue  # dominated by the filtering tuple
            survivors.append(row)
    else:
        survivors = window

    reduced = _rows_to_relation(storage, survivors)
    updated = _promote_filter(
        reduced, flt, estimation, over_margin, storage, counter
    )
    return LocalSkylineResult(
        skyline=reduced,
        unreduced_size=unreduced,
        updated_filter=updated,
        comparisons=counter,
        scanned=storage.cardinality,
        in_range=in_range,
    )


def _rows_to_relation(storage: StorageModel, rows: List[int]) -> Relation:
    if not rows:
        return Relation.empty(storage.schema)
    idx = np.asarray(rows, dtype=np.int64)
    values = storage.values_matrix()[idx]
    return Relation(storage.schema, storage.xy[idx], values, storage.site_ids[idx])


# ---------------------------------------------------------------------------
# Flat / pointer storage: BNL over raw values
# ---------------------------------------------------------------------------


def _local_skyline_values(
    storage: StorageModel,
    values: np.ndarray,
    query: SkylineQuery,
    flt: Optional[FilteringTuple],
    estimation: Estimation,
    over_margin: float,
    count_value_reads: bool,
) -> LocalSkylineResult:
    counter = ComparisonCounter()
    empty = Relation.empty(storage.schema)
    if storage.cardinality == 0:
        return LocalSkylineResult(skyline=empty, unreduced_size=0, skipped="mbr",
                                  updated_filter=flt, comparisons=counter)
    if mindist_point_rect(query.pos, storage.mbr) > query.d:
        return LocalSkylineResult(skyline=empty, unreduced_size=0, skipped="mbr",
                                  updated_filter=flt, comparisons=counter)

    dims = storage.dimensions
    if flt is not None:
        lows = storage.local_bounds()[0]
        counter.count_value(dims)
        if all(f <= lo for f, lo in zip(flt.values, lows)) and any(
            f < lo for f, lo in zip(flt.values, lows)
        ):
            return LocalSkylineResult(
                skyline=empty, unreduced_size=0, skipped="dominated",
                updated_filter=flt, comparisons=counter,
            )

    xy = storage.xy
    dx = xy[:, 0] - query.pos[0]
    dy = xy[:, 1] - query.pos[1]
    in_range_mask = (dx * dx + dy * dy) <= query.d * query.d
    counter.count_distance(storage.cardinality)

    rows = values.tolist()
    window: List[int] = []
    for row in range(storage.cardinality):
        if not in_range_mask[row]:
            continue
        v = rows[row]
        if count_value_reads:
            storage.stats.value_reads += dims
        dominated = False
        survivors: List[int] = []
        changed = False
        for w in window:
            wv = rows[w]
            counter.count_value(dims)
            if _dom(wv, v):
                dominated = True
                break
            if _dom(v, wv):
                changed = True  # window member evicted
                continue
            survivors.append(w)
        if dominated:
            continue
        if changed:
            window = survivors
        window.append(row)

    unreduced = len(window)
    survivors = []
    if flt is not None:
        fvals = list(flt.values)
        fx, fy = flt.site.x, flt.site.y
        for row in window:
            counter.count_value(dims)
            if xy[row, 0] == fx and xy[row, 1] == fy:
                continue
            if _dom(fvals, rows[row]):
                continue
            survivors.append(row)
    else:
        survivors = window

    reduced = _rows_to_relation(storage, survivors)
    updated = _promote_filter(
        reduced, flt, estimation, over_margin, storage, counter
    )
    return LocalSkylineResult(
        skyline=reduced,
        unreduced_size=unreduced,
        updated_filter=updated,
        comparisons=counter,
        scanned=storage.cardinality,
        in_range=int(in_range_mask.sum()),
    )


def _local_skyline_generic(
    storage: StorageModel,
    query: SkylineQuery,
    flt: Optional[FilteringTuple],
    estimation: Estimation,
    over_margin: float,
) -> LocalSkylineResult:
    """BNL through ``get_value`` so pointer layouts pay their real
    per-read indirection costs (recorded in ``storage.stats``)."""
    n, dims = storage.cardinality, storage.dimensions
    values = np.empty((n, dims), dtype=np.float64)
    for row in range(n):
        for attr in range(dims):
            values[row, attr] = storage.get_value(row, attr)
    return _local_skyline_values(
        storage, values, query, flt, estimation, over_margin,
        count_value_reads=False,
    )


def _dom(a, b) -> bool:
    no_worse = True
    better = False
    for x, y in zip(a, b):
        if x > y:
            no_worse = False
            break
        if x < y:
            better = True
    return no_worse and better


# ---------------------------------------------------------------------------
# Filter promotion (Section 3.4)
# ---------------------------------------------------------------------------


def _promote_filter(
    reduced: Relation,
    flt: Optional[FilteringTuple],
    estimation: Estimation,
    over_margin: float,
    storage: StorageModel,
    counter: ComparisonCounter,
) -> Optional[FilteringTuple]:
    """Pick the max-VDR local survivor; keep whichever of it and the
    incoming filter has the larger VDR under this device's own bounds."""
    if reduced.cardinality == 0:
        return flt
    local_highs = (
        storage.local_bounds()[1] if estimation is Estimation.UNDER else None
    )
    bounds = estimation_bounds(
        storage.schema, estimation, local_highs=local_highs, over_margin=over_margin
    )
    scores = vdr_matrix(reduced.values, bounds)
    best = int(np.argmax(scores))
    counter.count_value(reduced.cardinality)
    candidate = FilteringTuple(site=reduced.row(best), vdr=float(scores[best]))
    if flt is None:
        return candidate
    incoming_vdr = vdr(flt.values, bounds)
    return candidate if candidate.vdr > incoming_vdr else flt


# ---------------------------------------------------------------------------
# Vectorised variant (identical output, used by the big experiments)
# ---------------------------------------------------------------------------


def local_skyline_vectorized(
    relation: Relation,
    query: SkylineQuery,
    flt: Optional[FilteringTuple] = None,
    estimation: Estimation = Estimation.UNDER,
    over_margin: float = 0.2,
) -> LocalSkylineResult:
    """Numpy implementation of the Figure 4 pipeline over a raw relation.

    Produces the same ``SK'_i``, ``|SK_i|`` and promoted filter as the
    faithful paths, but in vectorised form; the simulation experiments
    use it so MANET-scale runs stay tractable. Operation counters are not
    populated — the device cost model estimates them analytically.
    """
    counter = ComparisonCounter()
    schema = relation.schema
    empty = Relation.empty(schema)
    if relation.cardinality == 0:
        return LocalSkylineResult(skyline=empty, unreduced_size=0, skipped="mbr",
                                  updated_filter=flt, comparisons=counter)
    if mindist_point_rect(query.pos, relation.mbr()) > query.d:
        return LocalSkylineResult(skyline=empty, unreduced_size=0, skipped="mbr",
                                  updated_filter=flt, comparisons=counter)

    # All dominance work happens in minimization space so MAX attributes
    # are handled uniformly (the paper assumes all-MIN; this generalizes).
    # The normalized view and both bounds are cached on the (immutable)
    # relation, so repeated queries against one relation pay them once.
    norm = relation.normalized_values()
    lows = np.asarray(relation.normalized_best(), dtype=np.float64)
    local_worst = relation.normalized_worst()
    flt_norm = (
        np.asarray(normalize_values(flt.values, schema), dtype=np.float64)
        if flt is not None
        else None
    )
    skipped_dominated = False
    if flt_norm is not None:
        if (flt_norm <= lows).all() and (flt_norm < lows).any():
            # The device would stop here after O(n) work (Figure 4); the
            # unreduced skyline size is still computed below because the
            # DRR metric (Formula 1) needs |SK_i| — the cost model keys
            # on ``skipped`` and charges only the O(n) check.
            skipped_dominated = True

    in_range = relation.within(query.pos, query.d)
    scoped = relation.take(np.nonzero(in_range)[0])
    if scoped.cardinality == 0:
        return LocalSkylineResult(
            skyline=empty, unreduced_size=0, updated_filter=flt,
            comparisons=counter, scanned=relation.cardinality, in_range=0,
        )
    sky_idx = skyline_numpy(scoped.normalized_values())
    sky = scoped.take(sky_idx)
    unreduced = sky.cardinality
    if skipped_dominated:
        return LocalSkylineResult(
            skyline=empty, unreduced_size=unreduced, skipped="dominated",
            updated_filter=flt, comparisons=counter,
            scanned=relation.cardinality, in_range=scoped.cardinality,
        )

    if flt_norm is not None:
        sky_norm = sky.normalized_values()
        no_worse = (flt_norm[None, :] <= sky_norm).all(axis=1)
        better = (flt_norm[None, :] < sky_norm).any(axis=1)
        same_site = (sky.xy[:, 0] == flt.site.x) & (sky.xy[:, 1] == flt.site.y)
        keep = ~((no_worse & better) | same_site)
        sky = sky.take(np.nonzero(keep)[0])

    local_highs = local_worst if estimation is Estimation.UNDER else None
    if sky.cardinality:
        bounds = estimation_bounds(
            schema, estimation, local_highs=local_highs,
            over_margin=over_margin,
        )
        scores = vdr_matrix(sky.normalized_values(), bounds)
        best = int(np.argmax(scores))
        candidate = FilteringTuple(site=sky.row(best), vdr=float(scores[best]))
        if flt is None or candidate.vdr > vdr(
            normalize_values(flt.values, schema), bounds
        ):
            updated = candidate
        else:
            updated = flt
    else:
        updated = flt

    return LocalSkylineResult(
        skyline=sky,
        unreduced_size=unreduced,
        updated_filter=updated,
        comparisons=counter,
        scanned=relation.cardinality,
        in_range=scoped.cardinality,
    )
