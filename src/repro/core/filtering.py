"""Filtering tuples and dominating regions (Sections 3.2-3.4).

A *filtering tuple* ``tp_flt`` travels with the query; devices use it to
prune local skyline members that cannot appear in the global skyline. The
originator picks the local skyline tuple with the largest **volume of
dominating region**

.. math:: VDR_j = \\prod_{k=1}^n (b_k - p_{jk})

where ``b_k`` is the upper bound of attribute ``k``'s domain. When the
global bounds are unknown on a device, over- and under-estimated regions
are used instead (Section 3.3) — neither affects correctness, only which
tuple gets picked. During multi-hop forwarding the filter is *dynamically
promoted*: an intermediate device replaces it when its own local skyline
holds a tuple with a larger VDR (Section 3.4).

The multi-filter extension sketched as future work in Section 7 is also
implemented: :func:`select_filter_set` greedily picks ``k`` tuples
maximizing the union volume of their dominating regions.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..storage.relation import Relation
from ..storage.schema import Preference, RelationSchema, SiteTuple

__all__ = [
    "Estimation",
    "FilteringTuple",
    "vdr",
    "vdr_matrix",
    "estimation_bounds",
    "normalize_values",
    "promote_filter",
    "select_filter",
    "select_filter_set",
    "union_dominating_volume",
]


class Estimation(enum.Enum):
    """How a device bounds the data space when computing VDRs.

    EXACT uses the true global domain upper bounds ``b_k`` (requires
    global knowledge); OVER uses pre-specified values above ``b_k`` (e.g.
    the attribute type's maximum); UNDER uses the locally known maxima
    ``h_k`` (Section 3.3).
    """

    EXACT = "exact"
    OVER = "over"
    UNDER = "under"


@dataclass(frozen=True)
class FilteringTuple:
    """A filtering tuple in flight: the site plus its current VDR score.

    The VDR is re-evaluated under each device's own estimation view when
    deciding dynamic promotion, so the stored score is advisory — it is
    the score assigned by whichever device last selected the filter.
    """

    site: SiteTuple
    vdr: float

    @property
    def values(self) -> Tuple[float, ...]:
        """Non-spatial attribute values used for pruning."""
        return self.site.values


def normalize_values(
    values: Sequence[float], schema: RelationSchema
) -> Tuple[float, ...]:
    """Map a raw value vector into minimization space (MAX attrs negated)."""
    schema.validate_values(values)
    return tuple(
        a.preference.normalize(float(v))
        for a, v in zip(schema.attributes, values)
    )


def estimation_bounds(
    schema: RelationSchema,
    estimation: Estimation,
    local_highs: Optional[Sequence[float]] = None,
    over_margin: float = 0.2,
) -> Tuple[float, ...]:
    """Per-attribute VDR bounds, **in minimization space**.

    For the paper's all-MIN schemas these are the familiar domain upper
    bounds ``b_k``; a MAX attribute contributes the normalized image of
    its *worst* corner (its negated lower bound).

    Args:
        schema: Relation schema (supplies the exact bounds).
        estimation: Which bounding mode to use.
        local_highs: The locally known per-attribute worst values in
            minimization space (``Relation.normalized_worst()``; equal to
            the local maxima ``h_k`` for all-MIN schemas). Required for
            UNDER.
        over_margin: OVER pads the exact bound by ``over_margin`` of the
            domain width — "a pre-specified value larger than the global
            domain upper bound".

    Returns:
        One bound per attribute, minimization space.
    """
    if estimation is Estimation.EXACT:
        return tuple(
            a.preference.normalize(a.high if a.preference is Preference.MIN else a.low)
            for a in schema.attributes
        )
    if estimation is Estimation.OVER:
        if over_margin <= 0:
            raise ValueError("over_margin must be > 0 for over-estimation")
        exact = estimation_bounds(schema, Estimation.EXACT)
        return tuple(
            b + over_margin * a.width for b, a in zip(exact, schema.attributes)
        )
    if estimation is Estimation.UNDER:
        if local_highs is None:
            raise ValueError("under-estimation requires the local maxima h_k")
        if len(local_highs) != schema.dimensions:
            raise ValueError(
                f"expected {schema.dimensions} local highs, got {len(local_highs)}"
            )
        return tuple(float(h) for h in local_highs)
    raise ValueError(f"unknown estimation {estimation!r}")


def vdr(values: Sequence[float], bounds: Sequence[float]) -> float:
    """Volume of the dominating region of one tuple.

    Factors are clamped at zero: a tuple sitting on (or beyond) a bound
    dominates nothing along that axis within the bounded space. This
    matters for under-estimation, where the tuple holding the local
    maximum has ``h_k - p_k = 0``.
    """
    if len(values) != len(bounds):
        raise ValueError(f"arity mismatch: {len(values)} vs {len(bounds)}")
    volume = 1.0
    for v, b in zip(values, bounds):
        volume *= max(b - v, 0.0)
    return volume


def vdr_matrix(values: np.ndarray, bounds: Sequence[float]) -> np.ndarray:
    """Vectorised :func:`vdr` over the rows of ``values``."""
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 2 or values.shape[1] != len(bounds):
        raise ValueError(
            f"values must be (N, {len(bounds)}), got {values.shape}"
        )
    factors = np.maximum(np.asarray(bounds, dtype=np.float64)[None, :] - values, 0.0)
    return factors.prod(axis=1)


def select_filter(
    skyline: Relation,
    estimation: Estimation = Estimation.EXACT,
    over_margin: float = 0.2,
    local_highs: Optional[Sequence[float]] = None,
) -> Optional[FilteringTuple]:
    """Pick the max-VDR tuple from a local skyline (Section 3.2).

    UNDER mode uses the local maxima ``h_k`` "known to M_i" — pass the
    device's relation-wide maxima via ``local_highs`` (hybrid storage
    reads them from its sorted domains in O(1)); the skyline's own maxima
    are the fallback when only the skyline is at hand.

    Returns None for an empty skyline.
    """
    if skyline.cardinality == 0:
        return None
    if estimation is Estimation.UNDER and local_highs is None:
        local_highs = skyline.normalized_worst()
    if estimation is not Estimation.UNDER:
        local_highs = None
    bounds = estimation_bounds(
        skyline.schema, estimation, local_highs=local_highs, over_margin=over_margin
    )
    scores = vdr_matrix(skyline.normalized_values(), bounds)
    best = int(np.argmax(scores))
    return FilteringTuple(site=skyline.row(best), vdr=float(scores[best]))


def promote_filter(
    skyline: Relation,
    incoming: Optional[FilteringTuple],
    bounds: Sequence[float],
) -> Optional[FilteringTuple]:
    """Dynamic filter promotion over precomputed bounds (Section 3.4).

    Scores every skyline row with :func:`vdr_matrix` (raw values — the
    faithful storage paths assume all-MIN schemas, where raw and
    normalized values coincide) and replaces ``incoming`` when the best
    local candidate has a strictly larger VDR under the same bounds.
    An empty skyline keeps the incoming filter unchanged.
    """
    if skyline.cardinality == 0:
        return incoming
    scores = vdr_matrix(skyline.values, bounds)
    best = int(np.argmax(scores))
    candidate = FilteringTuple(site=skyline.row(best), vdr=float(scores[best]))
    if incoming is None:
        return candidate
    return candidate if candidate.vdr > vdr(incoming.values, bounds) else incoming


def union_dominating_volume(
    tuples: Sequence[Sequence[float]], bounds: Sequence[float]
) -> float:
    """Volume of the union of the dominating regions of ``tuples``.

    All regions share the max corner ``bounds``, so the union volume
    follows from inclusion-exclusion: the intersection of a subset of
    regions is the region of their per-attribute elementwise maximum.
    Exponential in ``len(tuples)`` — intended for the small filter sets
    of the multi-filter extension (k <= ~6).
    """
    tuples = [tuple(t) for t in tuples]
    if not tuples:
        return 0.0
    if len(tuples) > 16:
        raise ValueError("inclusion-exclusion limited to 16 tuples")
    total = 0.0
    for r in range(1, len(tuples) + 1):
        sign = 1.0 if r % 2 == 1 else -1.0
        for subset in itertools.combinations(tuples, r):
            corner = tuple(max(vs) for vs in zip(*subset))
            total += sign * vdr(corner, bounds)
    return total


def select_filter_set(
    skyline: Relation,
    k: int,
    estimation: Estimation = Estimation.EXACT,
    over_margin: float = 0.2,
    local_highs: Optional[Sequence[float]] = None,
) -> List[FilteringTuple]:
    """Greedy max-coverage choice of ``k`` filtering tuples (Section 7).

    The first pick is the max-VDR tuple (identical to
    :func:`select_filter`); each further pick maximizes the marginal gain
    in union dominating volume. Stops early when no positive gain
    remains. ``local_highs`` has the same meaning as in
    :func:`select_filter`.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    if skyline.cardinality == 0:
        return []
    if estimation is Estimation.UNDER and local_highs is None:
        local_highs = skyline.normalized_worst()
    if estimation is not Estimation.UNDER:
        local_highs = None
    bounds = estimation_bounds(
        skyline.schema, estimation, local_highs=local_highs, over_margin=over_margin
    )
    values = skyline.normalized_values()
    chosen: List[int] = []
    chosen_values: List[Tuple[float, ...]] = []
    current_volume = 0.0
    candidates = list(range(skyline.cardinality))
    for _ in range(min(k, skyline.cardinality)):
        best_idx = None
        best_gain = 0.0
        best_volume = current_volume
        for idx in candidates:
            trial = chosen_values + [tuple(values[idx])]
            volume = union_dominating_volume(trial, bounds)
            gain = volume - current_volume
            if gain > best_gain:
                best_idx, best_gain, best_volume = idx, gain, volume
        if best_idx is None:
            break
        chosen.append(best_idx)
        chosen_values.append(tuple(values[best_idx]))
        current_volume = best_volume
        candidates.remove(best_idx)
    return [
        FilteringTuple(site=skyline.row(idx), vdr=vdr(tuple(values[idx]), bounds))
        for idx in chosen
    ]
