"""Core skyline machinery: dominance, algorithms, filtering, assembly."""

from .assembly import SkylineAssembler, merge_skylines
from .dominance import (
    ComparisonCounter,
    any_dominator,
    dominance_mask,
    dominates,
    dominates_or_equal,
    dominates_values,
    incomparable,
)
from .filtering import (
    Estimation,
    FilteringTuple,
    estimation_bounds,
    normalize_values,
    promote_filter,
    select_filter,
    select_filter_set,
    union_dominating_volume,
    vdr,
    vdr_matrix,
)
from .local import (
    LOCAL_PATHS,
    LocalSkylineResult,
    configure_local_path,
    local_skyline,
    local_skyline_vectorized,
    resolve_local_path,
)
from .multifilter import (
    MultiFilterResult,
    local_skyline_multifilter,
    prune_with_filters,
)
from .query import COUNTER_MODULUS, QueryCounter, QueryLog, SkylineQuery
from .skyline import (
    skyline_bnl,
    skyline_bruteforce,
    skyline_divide_conquer,
    skyline_numpy,
    skyline_of_relation,
    skyline_sfs,
)

__all__ = [
    "COUNTER_MODULUS",
    "ComparisonCounter",
    "Estimation",
    "FilteringTuple",
    "LOCAL_PATHS",
    "LocalSkylineResult",
    "MultiFilterResult",
    "QueryCounter",
    "QueryLog",
    "SkylineAssembler",
    "SkylineQuery",
    "any_dominator",
    "configure_local_path",
    "dominance_mask",
    "dominates",
    "dominates_or_equal",
    "dominates_values",
    "estimation_bounds",
    "incomparable",
    "local_skyline",
    "local_skyline_multifilter",
    "local_skyline_vectorized",
    "merge_skylines",
    "normalize_values",
    "promote_filter",
    "prune_with_filters",
    "resolve_local_path",
    "select_filter",
    "select_filter_set",
    "skyline_bnl",
    "skyline_bruteforce",
    "skyline_divide_conquer",
    "skyline_numpy",
    "skyline_of_relation",
    "skyline_sfs",
    "union_dominating_volume",
    "vdr",
    "vdr_matrix",
]
