"""Causal message tracing: per-query message DAGs.

Every wire message sent while an :class:`~repro.obs.observer.Observer`
is bound carries a :class:`TraceContext` — the root query span it
belongs to plus the causal event that produced it. The observer turns
sends, deliveries, drops, and fault duplicates into a flat stream of
:class:`CausalEvent` records; this module reconstructs them into
per-query DAGs answering the questions a span timeline cannot:

* **message trees** — which delivery caused which send, across flood
  re-broadcasts, result retransmissions, DF token re-issues, DF→BF
  failover re-floods, and continuous DELTAs;
* **hop-depth histograms** — how many deliveries happened n causal
  hops away from the issue event;
* **critical path** — the exact issue → ... → delivery chain that
  triggered the query's completion condition, i.e. the sequence of
  messages that determined the measured response time.

The trace context is observability metadata, not protocol state: it is
``compare=False`` on every message (equality, dedup, and hashing are
untouched), excluded from the modelled wire size (it stands for the
trace ids real transport headers already carry), and ``None`` in every
unobserved run, so instrumented runs stay bit-identical to plain ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "TraceContext",
    "CausalEvent",
    "QueryTrace",
    "CausalGraph",
    "build_causal_graph",
    "trace_of",
]

QueryKey = Tuple[int, int]


@dataclass(frozen=True)
class TraceContext:
    """The causal coordinates a wire message carries.

    Attributes:
        root: The root query span's sid (the tree every descendant of
            this message attaches to — re-issued DF keys and failover
            floods share their root's sid).
        parent: The causal event id that produced this message: the
            issue event for an originator's first send, the delivery
            that triggered a forward/response, or the send event itself
            once the frame is on the air.
    """

    root: int
    parent: Optional[int] = None


def trace_of(payload: Any) -> Optional[TraceContext]:
    """Extract the :class:`TraceContext` a frame payload carries.

    Understands the protocol/continuous messages directly and routed
    :class:`~repro.net.aodv.DataPacket` wrappers one level deep.
    """
    trace = getattr(payload, "trace", None)
    if trace is not None:
        return trace
    inner = getattr(payload, "payload", None)
    if inner is not None and not isinstance(payload, (dict, tuple)):
        return getattr(inner, "trace", None)
    return None


@dataclass
class CausalEvent:
    """One node of the causal DAG.

    Attributes:
        cid: Causal event id, unique within one observer.
        parent: The cid this event descends from (None for issue roots).
        kind: ``issue`` / ``send`` / ``deliver`` / ``drop`` / ``dup``.
        time: Simulation time of the event.
        node: Device the event happened at (transmitter for sends,
            receiver for deliveries and drops).
        root: Root query span sid this event belongs to.
        frame_kind: :class:`~repro.net.messages.FrameKind` string, or
            None for non-frame events (issue).
        frame_id: The frame involved, or None.
        size_bytes: Wire size of the frame involved (0 for issue).
        note: Free-form annotation (drop reason, alias cnt, ...).
    """

    cid: int
    parent: Optional[int]
    kind: str
    time: float
    node: Optional[int]
    root: int
    frame_kind: Optional[str] = None
    frame_id: Optional[int] = None
    size_bytes: int = 0
    note: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe form (flight-recorder dumps, health reports)."""
        return {
            "cid": self.cid,
            "parent": self.parent,
            "kind": self.kind,
            "time": self.time,
            "node": self.node,
            "root": self.root,
            "frame_kind": self.frame_kind,
            "frame_id": self.frame_id,
            "size_bytes": self.size_bytes,
            "note": self.note,
        }


@dataclass
class QueryTrace:
    """The reconstructed causal DAG of one root query."""

    root_sid: int
    key: Optional[QueryKey]
    events: List[CausalEvent] = field(default_factory=list)
    completion_cause: Optional[int] = None

    def __post_init__(self) -> None:
        self._by_cid: Dict[int, CausalEvent] = {}
        self._children: Dict[Optional[int], List[int]] = {}

    def add(self, event: CausalEvent) -> None:
        self.events.append(event)
        self._by_cid[event.cid] = event
        self._children.setdefault(event.parent, []).append(event.cid)

    def get(self, cid: int) -> Optional[CausalEvent]:
        """The event recorded under ``cid`` (None if unknown)."""
        return self._by_cid.get(cid)

    def children_of(self, cid: Optional[int]) -> List[CausalEvent]:
        """Events whose causal parent is ``cid``, in record order."""
        return [self._by_cid[c] for c in self._children.get(cid, ())]

    def roots(self) -> List[CausalEvent]:
        """Events with no recorded parent (normally one issue event)."""
        return [e for e in self.events if e.parent is None
                or e.parent not in self._by_cid]

    # -- analyses -----------------------------------------------------------

    def depth_of(self, cid: int) -> int:
        """Causal hop depth: deliveries on the path from the issue event
        (the issue itself is depth 0, the first delivery depth 1)."""
        depth = 0
        seen = set()
        event = self._by_cid.get(cid)
        while event is not None and event.cid not in seen:
            seen.add(event.cid)
            if event.kind == "deliver":
                depth += 1
            event = (
                self._by_cid.get(event.parent)
                if event.parent is not None else None
            )
        return depth

    def hop_depth_histogram(self) -> Dict[int, int]:
        """``{depth: deliveries}`` over every delivery in the DAG."""
        histogram: Dict[int, int] = {}
        for event in self.events:
            if event.kind == "deliver":
                depth = self.depth_of(event.cid)
                histogram[depth] = histogram.get(depth, 0) + 1
        return dict(sorted(histogram.items()))

    def chain(self, cid: Optional[int]) -> List[CausalEvent]:
        """The causal ancestry of ``cid``, issue-first (empty if
        ``cid`` is unknown)."""
        out: List[CausalEvent] = []
        seen = set()
        event = self._by_cid.get(cid) if cid is not None else None
        while event is not None and event.cid not in seen:
            seen.add(event.cid)
            out.append(event)
            event = (
                self._by_cid.get(event.parent)
                if event.parent is not None else None
            )
        out.reverse()
        return out

    def critical_path(self) -> List[CausalEvent]:
        """The issue → ... → delivery chain that fired the completion
        condition — the messages that determined the response time.
        Empty when the query never completed."""
        return self.chain(self.completion_cause)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe summary of the DAG and its analyses."""
        return {
            "root_sid": self.root_sid,
            "query": list(self.key) if self.key is not None else None,
            "events": len(self.events),
            "deliveries": sum(1 for e in self.events if e.kind == "deliver"),
            "drops": sum(1 for e in self.events if e.kind == "drop"),
            "hop_depth_histogram": {
                str(k): v for k, v in self.hop_depth_histogram().items()
            },
            "critical_path": [e.to_dict() for e in self.critical_path()],
        }

    def render(self, max_children: int = 8) -> str:
        """Indented text form of the message tree (debugging / CLI)."""
        lines: List[str] = []

        def visit(event: CausalEvent, depth: int) -> None:
            frame = f" {event.frame_kind}" if event.frame_kind else ""
            note = f" [{event.note}]" if event.note else ""
            lines.append(
                f"{'  ' * depth}{event.kind}{frame} cid={event.cid} "
                f"node={event.node} t={event.time:.3f}{note}"
            )
            children = self.children_of(event.cid)
            for child in children[:max_children]:
                visit(child, depth + 1)
            if len(children) > max_children:
                lines.append(
                    f"{'  ' * (depth + 1)}... {len(children) - max_children} "
                    "more"
                )

        for root in self.roots():
            visit(root, 0)
        return "\n".join(lines)


class CausalGraph:
    """Every query's causal DAG, reconstructed from one observer."""

    def __init__(self, queries: Dict[QueryKey, QueryTrace]) -> None:
        self.queries = queries

    def __getitem__(self, key: QueryKey) -> QueryTrace:
        return self.queries[key]

    def __contains__(self, key: QueryKey) -> bool:
        return key in self.queries

    def __len__(self) -> int:
        return len(self.queries)

    def to_dict(self) -> Dict[str, Any]:
        return {
            f"{key[0]}:{key[1]}": trace.to_dict()
            for key, trace in self.queries.items()
        }


def build_causal_graph(observer) -> CausalGraph:
    """Group the observer's flat causal stream into per-query DAGs.

    Queries are keyed by their *primary* key — re-issued DF keys and
    failover keys alias onto the root they share a span with.
    """
    primary: Dict[int, QueryKey] = {}
    for span in observer.spans:
        if span.name in ("query", "subscription") and span.query is not None:
            primary.setdefault(span.sid, span.query)
    traces: Dict[int, QueryTrace] = {}
    for event in observer.causal:
        trace = traces.get(event.root)
        if trace is None:
            trace = QueryTrace(root_sid=event.root,
                               key=primary.get(event.root))
            traces[event.root] = trace
        trace.add(event)
    for root_sid, cause in getattr(observer, "_completion_cause", {}).items():
        trace = traces.get(root_sid)
        if trace is not None:
            trace.completion_cause = cause
    return CausalGraph({
        trace.key: trace
        for trace in traces.values()
        if trace.key is not None
    })
