"""Named-instrument metrics registry.

The repo grew three ad-hoc counter families — the world's
:class:`~repro.net.world.TrafficStats`, the core layer's
:class:`~repro.core.dominance.ComparisonCounter`, and the storage
layer's :class:`~repro.storage.base.AccessStats`. Each is load-bearing
(results and the device cost model key on them), so they stay; what was
missing is a single *named* view of everything a run counted. The
registry provides that: counters, gauges, and histograms addressed by
dotted instrument names (``net.tx.frames``, ``core.local.scanned``,
``protocol.result.retransmits``, ...), with a true no-op default so
code paths instrumented against :data:`NULL_REGISTRY` cost one
attribute load and a branch when observability is off.

Instrument naming convention (see ``docs/observability.md``):

``<layer>.<subsystem>.<quantity>`` — layer is one of ``net``, ``aodv``,
``protocol``, ``core``, ``storage``, ``sim``; quantities are plural
nouns for counters (``frames``, ``bytes``, ``retransmits``), singular
for gauges, and ``_s`` / ``_bytes`` suffixed for histograms recording
seconds / sizes.
"""

from __future__ import annotations

from typing import Dict, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (must be >= 0) to the count."""
        self.value += n

    def snapshot(self):
        return self.value


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def snapshot(self):
        return self.value


class Histogram:
    """Streaming distribution summary: count / sum / min / max.

    Deliberately bucket-free — the simulator's consumers want exact
    totals and extremes, and a fixed bucket layout would be one more
    schema to version. ``mean`` is derived on read.
    """

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        """Record one sample."""
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> Optional[float]:
        """Arithmetic mean of all samples, or None before any."""
        return self.total / self.count if self.count else None

    def snapshot(self):
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }


class MetricsRegistry:
    """Creates-or-returns named instruments.

    One registry per observed run. An instrument name is bound to its
    first-requested type; asking for the same name as a different type
    is a programming error and raises.
    """

    enabled = True

    def __init__(self) -> None:
        self._instruments: Dict[str, object] = {}

    def _get(self, name: str, cls):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = cls(name)
            self._instruments[name] = instrument
        elif type(instrument) is not cls:
            raise TypeError(
                f"instrument {name!r} already registered as "
                f"{type(instrument).__name__}, requested {cls.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        """The counter registered under ``name`` (created on first use)."""
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """The gauge registered under ``name`` (created on first use)."""
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        """The histogram registered under ``name`` (created on first use)."""
        return self._get(name, Histogram)

    def snapshot(self) -> Dict[str, object]:
        """``{name: value}`` for every instrument, sorted by name."""
        return {
            name: self._instruments[name].snapshot()
            for name in sorted(self._instruments)
        }

    def counter_values(self) -> Dict[str, int]:
        """``{name: value}`` for the counters only — the cheap snapshot
        the streaming analyzer diffs at every window close."""
        return {
            name: instrument.value
            for name, instrument in self._instruments.items()
            if type(instrument) is Counter
        }

    def render(self) -> str:
        """Text table of every instrument (debugging / CLI output)."""
        lines = []
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            if isinstance(instrument, Histogram):
                mean = instrument.mean
                lines.append(
                    f"{name:<40} count={instrument.count} "
                    f"sum={instrument.total:.6g} "
                    f"mean={mean:.6g}" if mean is not None
                    else f"{name:<40} count=0"
                )
            else:
                lines.append(f"{name:<40} {instrument.snapshot()}")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self._instruments)


class _NullInstrument:
    """Absorbs every instrument call; shared by all names."""

    __slots__ = ()
    name = "<null>"
    value = 0
    count = 0
    total = 0.0
    min = None
    max = None
    mean = None

    def inc(self, n: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def snapshot(self):
        return None


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """The off switch: every lookup returns one shared no-op instrument.

    ``enabled`` is False so call sites can skip even the lookup:
    ``if obs.enabled: obs.metrics.counter(...).inc()``.
    """

    enabled = False

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def snapshot(self) -> Dict[str, object]:
        return {}

    def counter_values(self) -> Dict[str, int]:
        return {}

    def render(self) -> str:
        return ""

    def __len__(self) -> int:
        return 0


#: Process-wide shared no-op registry.
NULL_REGISTRY = NullRegistry()
