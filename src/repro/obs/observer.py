"""Span-based query-lifecycle observer.

One :class:`Observer` watches one simulation run. Protocol code reports
milestones through domain-specific hooks (``query_issued``,
``local_eval``, ``frame_sent`` ...); the observer turns them into a
flat, append-only stream of :class:`SpanRecord` and :class:`EventRecord`
entries carrying both simulation time and wall time. Span *trees* are a
read-side construct: every record carries its query key ``(origin,
cnt)``, so per-query trees are assembled on demand (see
:func:`~repro.obs.exporters.build_query_trees`).

The contract that makes observability safe to leave wired into the
protocol stack permanently:

* **Passive** — the observer never schedules simulation events, never
  consumes randomness, and never mutates protocol state, so an observed
  run is bit-identical to an unobserved one (results, counters,
  ``AccessStats``, fault traces — pinned by ``tests/test_obs.py``).
* **Cheap when off** — the default world observer is
  :data:`NULL_OBSERVER`, whose ``enabled`` is False; every
  instrumentation site is guarded by that flag, so the off path costs
  one attribute load and a branch.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from .causal import CausalEvent, TraceContext, trace_of
from .registry import MetricsRegistry, NULL_REGISTRY

if TYPE_CHECKING:  # import kept type-only: net.world imports this module
    from ..net.messages import Frame
    from .flight import FlightRecorder
    from .stream import StreamAnalyzer

__all__ = [
    "SpanRecord",
    "EventRecord",
    "Observer",
    "NullObserver",
    "NULL_OBSERVER",
    "query_key_of",
]

QueryKey = Tuple[int, int]


@dataclass
class SpanRecord:
    """One timed interval in a query's lifecycle.

    Attributes:
        sid: Span id, unique within one observer.
        parent: Enclosing span's sid (None for roots).
        name: Phase name (``query``, ``local-eval``, ``hop`` ...).
        cat: Coarse category used by the phase profiler (``protocol``,
            ``net``, ``core`` ...).
        query: ``(origin, cnt)`` key, or None for non-query spans.
        node: Device the span executed on, or None.
        t0: Simulation time the span opened.
        t1: Simulation time it closed (None while open).
        wall0: ``perf_counter`` at open.
        wall1: ``perf_counter`` at close (None while open).
        attrs: Free-form annotations (tuple counts, bytes, fault notes).
    """

    sid: int
    parent: Optional[int]
    name: str
    cat: str
    query: Optional[QueryKey]
    node: Optional[int]
    t0: float
    t1: Optional[float] = None
    wall0: float = 0.0
    wall1: Optional[float] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def sim_duration(self) -> Optional[float]:
        """Simulated seconds the span covered (None while open)."""
        return None if self.t1 is None else self.t1 - self.t0

    @property
    def wall_duration(self) -> Optional[float]:
        """Wall-clock seconds spent inside the span (None while open)."""
        return None if self.wall1 is None else self.wall1 - self.wall0


@dataclass
class EventRecord:
    """One instantaneous milestone."""

    name: str
    time: float
    query: Optional[QueryKey] = None
    node: Optional[int] = None
    attrs: Dict[str, Any] = field(default_factory=dict)


def query_key_of(payload: Any) -> Optional[QueryKey]:
    """Extract the ``(origin, cnt)`` key a frame payload belongs to.

    Understands the skyline protocol messages (query / result / token /
    ack) and routed :class:`~repro.net.aodv.DataPacket` wrappers; AODV
    control payloads yield None.
    """
    # DataPacket wraps the protocol payload one level deep.
    inner = getattr(payload, "payload", None)
    if inner is not None and not isinstance(payload, (dict, tuple)):
        kind = getattr(payload, "kind", None)
        if kind is not None and hasattr(payload, "dest"):
            payload = inner
    query = getattr(payload, "query", None)
    if query is not None:
        key = getattr(query, "key", None)
        if key is not None:
            return key
    key = getattr(payload, "query_key", None)
    if key is not None:
        return key
    return None


class Observer:
    """Records the lifecycle of every query in one simulation run."""

    enabled = True

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.spans: List[SpanRecord] = []
        self.events: List[EventRecord] = []
        self.metrics = registry if registry is not None else MetricsRegistry()
        self._next_sid = 0
        self._open: Dict[int, SpanRecord] = {}
        self._query_roots: Dict[QueryKey, int] = {}
        self._hop_spans: Dict[int, int] = {}  # frame_id -> sid
        self._world = None
        self.faults: List[EventRecord] = []
        #: Flat causal stream (see ``repro.obs.causal``): one record per
        #: issue / send / deliver / drop / dup, linked by parent cid.
        self.causal: List[CausalEvent] = []
        self._next_cid = 0
        #: (node, root sid) -> cid of the last causal event at that
        #: node for that query — the parent of whatever it sends next.
        self._cursor: Dict[Tuple[int, int], int] = {}
        #: root sid -> cid of the delivery that fired completion.
        self._completion_cause: Dict[int, Optional[int]] = {}
        self.flight: Optional["FlightRecorder"] = None
        self.stream: Optional["StreamAnalyzer"] = None

    # -- wiring --------------------------------------------------------------

    def bind(self, world) -> "Observer":
        """Attach to ``world``: future records read its clock, and the
        world's instrumentation sites start reporting here."""
        self._world = world
        world.obs = self
        return self

    @property
    def now(self) -> float:
        """Current simulation time (0.0 before binding)."""
        return self._world.sim.now if self._world is not None else 0.0

    def attach_flight(self, recorder: "FlightRecorder") -> "Observer":
        """Mirror protocol/net/fault hooks into ``recorder``'s per-node
        rings and let crash / deadline / invariant triggers dump them."""
        self.flight = recorder
        return self

    def attach_stream(self, analyzer: "StreamAnalyzer") -> "Observer":
        """Feed ``analyzer``'s sliding windows from this observer's
        registry and hooks (windows roll lazily — no sim events)."""
        self.stream = analyzer.attach(self.metrics)
        return self

    # -- causal helpers -------------------------------------------------------

    def _causal_add(
        self,
        kind: str,
        parent: Optional[int],
        root: int,
        node: Optional[int],
        frame: Optional["Frame"] = None,
        note: Optional[str] = None,
    ) -> int:
        cid = self._next_cid
        self._next_cid += 1
        self.causal.append(CausalEvent(
            cid=cid, parent=parent, kind=kind, time=self.now, node=node,
            root=root,
            frame_kind=frame.kind if frame is not None else None,
            frame_id=frame.frame_id if frame is not None else None,
            size_bytes=frame.size_bytes if frame is not None else 0,
            note=note,
        ))
        return cid

    def trace_context(
        self, key: Optional[QueryKey], node: int
    ) -> Optional[TraceContext]:
        """The causal coordinates a message constructed at ``node`` for
        query ``key`` should carry (None for unobserved queries).
        Protocol code stamps this on outgoing wire messages when
        observation is on; it is pure metadata (``compare=False``,
        no wire size), so stamped runs stay bit-identical."""
        if key is None:
            return None
        root = self._query_roots.get(key)
        if root is None:
            return None
        return TraceContext(root=root, parent=self._cursor.get((node, root)))

    def _chain_dicts(
        self, cid: Optional[int], limit: int = 32
    ) -> List[Dict[str, Any]]:
        """JSON-safe causal ancestry of ``cid``, oldest first."""
        if cid is None:
            return []
        by_cid = {e.cid: e for e in self.causal}
        out: List[Dict[str, Any]] = []
        while cid is not None and len(out) < limit:
            event = by_cid.get(cid)
            if event is None:
                break
            out.append(event.to_dict())
            cid = event.parent
        out.reverse()
        return out

    def _node_last_cause(self, node: int) -> Optional[int]:
        """The most recent causal event recorded at ``node``."""
        best = None
        for (owner, _root), cid in self._cursor.items():
            if owner == node and (best is None or cid > best):
                best = cid
        return best

    # -- generic span/event API ---------------------------------------------

    def begin(
        self,
        name: str,
        cat: str = "protocol",
        query: Optional[QueryKey] = None,
        node: Optional[int] = None,
        parent: Optional[int] = None,
        **attrs: Any,
    ) -> int:
        """Open a span at the current sim time; returns its sid."""
        sid = self._next_sid
        self._next_sid += 1
        if parent is None and query is not None:
            parent = self._query_roots.get(query)
        span = SpanRecord(
            sid=sid,
            parent=parent,
            name=name,
            cat=cat,
            query=query,
            node=node,
            t0=self.now,
            wall0=time.perf_counter(),
            attrs=attrs,
        )
        self.spans.append(span)
        self._open[sid] = span
        return sid

    def end(self, sid: int, t: Optional[float] = None, **attrs: Any) -> None:
        """Close a span. ``t`` overrides the sim end time — used for
        modelled intervals whose duration is known analytically (e.g. a
        local evaluation's device processing delay)."""
        span = self._open.pop(sid, None)
        if span is None:
            return
        span.t1 = self.now if t is None else t
        span.wall1 = time.perf_counter()
        if attrs:
            span.attrs.update(attrs)

    def event(
        self,
        name: str,
        query: Optional[QueryKey] = None,
        node: Optional[int] = None,
        **attrs: Any,
    ) -> None:
        """Record an instantaneous milestone at the current sim time."""
        self.events.append(
            EventRecord(name=name, time=self.now, query=query, node=node,
                        attrs=attrs)
        )
        if self.stream is not None:
            self.stream.advance(self.now)
        if self.flight is not None and node is not None:
            self.flight.note(node, name, self.now, query, **attrs)

    # -- query lifecycle hooks ------------------------------------------------

    def query_issued(
        self, query: QueryKey, node: int, **attrs: Any
    ) -> int:
        """Open the root span for a freshly issued query."""
        sid = self.begin("query", cat="protocol", query=query, node=node,
                         **attrs)
        self._query_roots[query] = sid
        cid = self._causal_add("issue", None, sid, node)
        self._cursor[(node, sid)] = cid
        self.metrics.counter("protocol.queries.issued").inc()
        if self.stream is not None:
            self.stream.advance(self.now)
        if self.flight is not None:
            self.flight.note(node, "query.issued", self.now, query)
        return sid

    def query_alias(self, new_key: QueryKey, root_key: QueryKey) -> None:
        """Map a re-issued DF query key onto its root query's span tree."""
        sid = self._query_roots.get(root_key)
        if sid is not None:
            self._query_roots[new_key] = sid
        self.event("token.reissue", query=root_key,
                   new_cnt=new_key[1])
        self.metrics.counter("protocol.token.reissues").inc()

    def query_completed(self, query: QueryKey, node: int, **attrs: Any) -> None:
        """Mark the strategy's completion condition on the root span."""
        sid = self._query_roots.get(query)
        if sid is not None:
            span = self._open.get(sid)
            if span is not None:
                span.attrs["completion_time"] = self.now
                span.attrs.update(attrs)
            # The delivery the originator just processed is the causal
            # event that fired completion: the critical path's endpoint.
            self._completion_cause[sid] = self._cursor.get((node, sid))
        self.event("query.completed", query=query, node=node, **attrs)
        self.metrics.counter("protocol.queries.completed").inc()

    def query_closed(self, query: QueryKey, **attrs: Any) -> None:
        """Close the root span (timeout or strategy closure)."""
        sid = self._query_roots.get(query)
        if sid is not None:
            self.end(sid, **attrs)
        if self.stream is not None:
            coverage = attrs.get("coverage")
            if coverage is not None:
                self.stream.observe(
                    "protocol.coverage", float(coverage), self.now
                )

    def local_eval(
        self,
        query: Optional[QueryKey],
        node: int,
        result,
        delay: float,
        wall_s: float,
    ) -> None:
        """Record one local-skyline evaluation as a closed span.

        The sim-time interval is ``[now, now + delay]`` — the modelled
        device processing time the protocol actually waits before acting
        on the result — while ``wall_s`` is the real compute cost.
        """
        now = self.now
        wall1 = time.perf_counter()
        sid = self._next_sid
        self._next_sid += 1
        span = SpanRecord(
            sid=sid,
            parent=self._query_roots.get(query) if query is not None else None,
            name="local-eval",
            cat="core",
            query=query,
            node=node,
            t0=now,
            t1=now + delay,
            wall0=wall1 - wall_s,
            wall1=wall1,
            attrs={
                "scanned": result.scanned,
                "in_range": result.in_range,
                "unreduced": result.unreduced_size,
                "reduced": result.reduced_size,
                "skipped": result.skipped,
                "comparisons": result.comparisons.as_tuple(),
            },
        )
        self.spans.append(span)
        m = self.metrics
        m.counter("core.local.evaluations").inc()
        m.counter("core.local.scanned").inc(result.scanned)
        m.counter("core.local.in_range").inc(result.in_range)
        m.counter("core.local.reduced").inc(result.reduced_size)
        if result.skipped is not None:
            m.counter(f"core.local.skips.{result.skipped}").inc()
        m.histogram("core.local.wall_s").observe(wall_s)
        m.histogram("core.local.delay_s").observe(delay)
        if self.stream is not None:
            self.stream.observe("core.local.wall_s", wall_s, now)
        if self.flight is not None:
            self.flight.note(node, "local-eval", now, query,
                             scanned=result.scanned,
                             reduced=result.reduced_size)

    def filter_promoted(
        self, query: Optional[QueryKey], node: int, vdr: float
    ) -> None:
        """A device replaced the in-flight filtering tuple with its own."""
        self.event("filter.promoted", query=query, node=node, vdr=vdr)
        self.metrics.counter("protocol.filter.promotions").inc()

    def result_merged(
        self, query: QueryKey, node: int, sender: int, tuples: int
    ) -> None:
        """The originator merged one device's contribution."""
        self.event("result.merged", query=query, node=node, sender=sender,
                   tuples=tuples)
        self.metrics.counter("protocol.results.merged").inc()

    # -- resilience hooks ------------------------------------------------------

    def failover(
        self, new_key: QueryKey, root_key: QueryKey, node: int, **attrs: Any
    ) -> None:
        """A DF originator abandoned the token walk and re-flooded the
        query breadth-first; ``new_key`` aliases onto the root span."""
        sid = self._query_roots.get(root_key)
        if sid is not None:
            self._query_roots[new_key] = sid
        self.event("query.failover", query=root_key, node=node,
                   new_cnt=new_key[1], **attrs)
        self.metrics.counter("resilience.failovers").inc()

    def orphan_reaped(self, query: QueryKey, node: int, what: str) -> None:
        """In-flight work for a crashed originator was suppressed
        (``what``: token / token-backtrack / flood-query / result /
        result-retry)."""
        self.event("orphan.reaped", query=query, node=node, what=what)
        self.metrics.counter("resilience.orphans_reaped").inc()
        self.metrics.counter(f"resilience.orphans.{what}").inc()

    def deadline_close(self, query: QueryKey, node: int) -> None:
        """A record closed on its deadline budget without ever reaching
        its strategy's completion condition."""
        self.event("query.deadline-close", query=query, node=node)
        self.metrics.counter("resilience.deadline_closes").inc()
        if self.flight is not None:
            root = self._query_roots.get(query)
            cause = (
                self._cursor.get((node, root)) if root is not None else None
            )
            self.flight.dump(
                "deadline-expiry", self.now, node=node, query=query,
                detail="query closed on deadline budget before completion",
                causal=self._chain_dicts(cause),
            )

    # -- continuous-subscription hooks ----------------------------------------

    def subscription_installed(
        self, sub_key: QueryKey, node: int, **attrs: Any
    ) -> int:
        """Open the root span of a continuous subscription; every
        refresh-epoch event attaches under it via the query-root map."""
        sid = self.begin("subscription", cat="continuous", query=sub_key,
                         node=node, **attrs)
        self._query_roots[sub_key] = sid
        cid = self._causal_add("issue", None, sid, node)
        self._cursor[(node, sid)] = cid
        self.metrics.counter("continuous.subscriptions.installed").inc()
        return sid

    def subscription_refreshed(
        self, sub_key: QueryKey, node: int, epoch: int, **attrs: Any
    ) -> None:
        """The originator closed one refresh epoch."""
        self.event("subscription.refresh", query=sub_key, node=node,
                   epoch=epoch, **attrs)
        self.metrics.counter("continuous.epochs.closed").inc()

    def subscription_cancelled(
        self, sub_key: QueryKey, node: int, reason: str
    ) -> None:
        """The subscription ended (``reason``: cancelled / expired /
        originator-crash); closes the root span."""
        self.event("subscription.end", query=sub_key, node=node,
                   reason=reason)
        self.metrics.counter("continuous.subscriptions.ended").inc()
        self.metrics.counter(f"continuous.end.{reason}").inc()
        sid = self._query_roots.get(sub_key)
        if sid is not None:
            self.end(sid, reason=reason)

    def delta_sent(
        self, sub_key: QueryKey, node: int, epoch: int,
        enters: int, leaves: int,
    ) -> None:
        """A contributor shipped an incremental DELTA toward home."""
        self.event("delta.sent", query=sub_key, node=node, epoch=epoch,
                   enters=enters, leaves=leaves)
        self.metrics.counter("continuous.deltas.sent").inc()

    def delta_merged(
        self, sub_key: QueryKey, node: int, sender: int, epoch: int
    ) -> None:
        """The originator merged one device's DELTA for ``epoch``."""
        self.event("delta.merged", query=sub_key, node=node, sender=sender,
                   epoch=epoch)
        self.metrics.counter("continuous.deltas.merged").inc()

    def data_updated(self, node: int, epoch: int, fraction: float) -> None:
        """A data update swapped ``node``'s relation version."""
        self.event("data.updated", node=node, epoch=epoch,
                   fraction=fraction)
        self.metrics.counter("continuous.data_updates").inc()

    # -- frame-level hooks (called by World) ----------------------------------

    def frame_sent(self, frame: Frame) -> None:
        """A frame hit the air; unicast frames open a hop span.

        Query-attributed frames also get a causal ``send`` event whose
        parent is the last thing that happened to this query at the
        transmitter (the delivery that provoked the send, or the issue
        event at the originator), falling back to the causal context
        stamped on the payload at message-construction time (which is
        what ties a delayed retransmission back to its original cause).
        The frame then carries ``TraceContext(root, send_cid)`` so its
        deliveries and drops attach under the send."""
        key = query_key_of(frame.payload)
        m = self.metrics
        m.counter("net.tx.frames").inc()
        m.counter(f"net.tx.{frame.kind}").inc()
        m.counter("net.tx.bytes").inc(frame.size_bytes)
        if self.stream is not None:
            self.stream.advance(self.now)
        cid = None
        root = self._query_roots.get(key) if key is not None else None
        if root is not None:
            parent = self._cursor.get((frame.src, root))
            if parent is None:
                mtrace = trace_of(frame.payload)
                if mtrace is not None:
                    parent = mtrace.parent
            cid = self._causal_add("send", parent, root, frame.src,
                                   frame=frame)
            frame.trace = TraceContext(root=root, parent=cid)
        if self.flight is not None:
            self.flight.note(frame.src, f"tx.{frame.kind}", self.now, key,
                             dst=frame.dst, bytes=frame.size_bytes)
        if frame.dst is None:
            # Broadcasts fan out to many receivers; model the send as an
            # instant event, deliveries as events referencing frame_id.
            self.event("frame.broadcast", query=key, node=frame.src,
                       frame=frame.kind, frame_id=frame.frame_id,
                       bytes=frame.size_bytes)
            return
        attrs = dict(
            frame=frame.kind, frame_id=frame.frame_id, src=frame.src,
            dst=frame.dst, bytes=frame.size_bytes,
        )
        if cid is not None:
            attrs["cid"] = cid
        sid = self.begin("hop", cat="net", query=key, node=frame.src,
                         **attrs)
        self._hop_spans[frame.frame_id] = sid

    def frame_delivered(self, frame: Frame, node: int) -> None:
        """A frame arrived at ``node``; closes the hop span (unicast).

        The delivery becomes the node's current causal cursor for the
        frame's query, so whatever the node sends next for that query
        inherits this delivery as its parent."""
        self.metrics.counter("net.rx.frames").inc()
        trace = frame.trace
        cid = None
        if trace is not None:
            cid = self._causal_add("deliver", trace.parent, trace.root,
                                   node, frame=frame)
            self._cursor[(node, trace.root)] = cid
        if self.flight is not None:
            self.flight.note(node, f"rx.{frame.kind}", self.now,
                             query_key_of(frame.payload), src=frame.src)
        sid = self._hop_spans.pop(frame.frame_id, None)
        if sid is not None:
            if cid is not None:
                self.end(sid, outcome="delivered", cid=cid)
            else:
                self.end(sid, outcome="delivered")
        else:
            self.event("frame.heard", query=query_key_of(frame.payload),
                       node=node, frame=frame.kind, frame_id=frame.frame_id)

    def frame_duplicated(self, frame: Frame) -> None:
        """The duplication fault delivered a second copy of ``frame``."""
        self.metrics.counter("net.dup.frames").inc()
        trace = frame.trace
        if trace is not None:
            self._causal_add("dup", trace.parent, trace.root, frame.src,
                             frame=frame)
        self.event("frame.duplicated", query=query_key_of(frame.payload),
                   node=frame.src, frame=frame.kind, frame_id=frame.frame_id)

    def frame_dropped(self, frame: Frame, reason: str) -> None:
        """A frame was lost (``reason``: no-link / loss / moved / fault)."""
        self.metrics.counter("net.drops").inc()
        self.metrics.counter(f"net.drops.{reason}").inc()
        trace = frame.trace
        if trace is not None:
            self._causal_add("drop", trace.parent, trace.root, frame.dst,
                             frame=frame, note=reason)
        if self.flight is not None:
            self.flight.note(frame.src, f"drop.{frame.kind}", self.now,
                             query_key_of(frame.payload), reason=reason,
                             dst=frame.dst)
        sid = self._hop_spans.pop(frame.frame_id, None)
        if sid is not None:
            self.end(sid, outcome="dropped", reason=reason)
        else:
            self.event("frame.dropped", query=query_key_of(frame.payload),
                       node=frame.dst, frame=frame.kind,
                       frame_id=frame.frame_id, reason=reason)

    # -- fault hooks -----------------------------------------------------------

    def fault(self, kind: str, node: Optional[int] = None,
              link: Optional[Tuple[int, int]] = None,
              **attrs: Any) -> None:
        """A fault transition was applied to the world.

        Recorded both in the main event stream and in :attr:`faults`, so
        exporters can annotate every query span the fault overlaps.
        """
        record = EventRecord(
            name=f"fault.{kind}", time=self.now, node=node,
            attrs=dict(attrs, link=link),
        )
        self.events.append(record)
        self.faults.append(record)
        self.metrics.counter(f"faults.{kind}").inc()
        if self.stream is not None:
            self.stream.advance(self.now)
        if self.flight is not None:
            if node is not None:
                self.flight.note(node, f"fault.{kind}", self.now, **attrs)
            elif link is not None:
                for endpoint in link:
                    self.flight.note(endpoint, f"fault.{kind}", self.now,
                                     link=link, **attrs)
            if kind == "node-crash" and node is not None:
                cause = self._node_last_cause(node)
                self.flight.dump(
                    "node-crash", self.now, node=node,
                    detail=f"device {node} crashed"
                    + (f" ({attrs})" if attrs else ""),
                    causal=self._chain_dicts(cause),
                )

    def query_aborted_by_crash(self, query: QueryKey, node: int) -> None:
        """The originator crashed with this query still in flight."""
        sid = self._query_roots.get(query)
        if sid is not None:
            span = self._open.get(sid)
            if span is not None:
                span.attrs["aborted_by_crash"] = True
        self.event("query.aborted-by-crash", query=query, node=node)
        self.metrics.counter("protocol.queries.aborted_by_crash").inc()

    # -- finalization ----------------------------------------------------------

    def finalize(self, result=None) -> None:
        """Close every still-open span at the final sim time and fold
        the run's legacy counter families into named instruments.

        ``result`` is an optional
        :class:`~repro.protocol.coordinator.SimulationResult`; its
        :class:`~repro.net.world.TrafficStats` and energy totals become
        ``net.final.*`` / ``sim.*`` gauges so one registry snapshot
        carries the whole run.
        """
        for sid in list(self._open):
            self.end(sid, outcome="unfinished")
        if self.stream is not None:
            self.stream.finalize(self.now)
        if result is None:
            return
        g = self.metrics.gauge
        stats = result.traffic
        g("net.final.transmissions").set(stats.transmissions)
        g("net.final.deliveries").set(stats.deliveries)
        g("net.final.drops").set(stats.drops)
        g("net.final.bytes_sent").set(stats.bytes_sent)
        g("net.final.protocol_messages").set(stats.protocol_messages())
        g("net.final.control_messages").set(stats.control_messages())
        g("sim.events").set(result.events)
        g("sim.time").set(result.sim_time)
        g("sim.devices").set(result.devices)
        g("sim.queries.issued").set(result.issued)
        g("sim.queries.suppressed").set(result.suppressed)
        g("sim.energy_joules").set(result.total_energy)

    # -- inspection ------------------------------------------------------------

    def query_keys(self) -> List[QueryKey]:
        """Root query keys observed, in issue order (aliases excluded)."""
        seen = []
        roots = set()
        for span in self.spans:
            if span.name == "query" and span.sid not in roots:
                roots.add(span.sid)
                seen.append(span.query)
        return seen

    def spans_for(self, query: QueryKey) -> List[SpanRecord]:
        """Every span belonging to ``query`` (root included), in open order."""
        root_sid = self._query_roots.get(query)
        return [
            s for s in self.spans
            if s.query == query or (root_sid is not None and s.sid == root_sid)
        ]

    def events_for(self, query: QueryKey) -> List[EventRecord]:
        """Every instant event belonging to ``query``, in record order."""
        return [e for e in self.events if e.query == query]

    def faults_during(self, t0: float, t1: float) -> List[EventRecord]:
        """Fault transitions applied inside ``[t0, t1]``."""
        return [f for f in self.faults if t0 <= f.time <= t1]

    def __len__(self) -> int:
        return len(self.spans) + len(self.events)


class NullObserver:
    """The default observer: absorbs every hook at near-zero cost.

    Every instrumentation site guards on :attr:`enabled`, so in the
    common case none of these methods is even called; they exist so
    unguarded calls (cold paths, tests) stay safe.
    """

    enabled = False
    metrics = NULL_REGISTRY
    spans: List[SpanRecord] = []
    events: List[EventRecord] = []
    faults: List[EventRecord] = []
    causal: List["CausalEvent"] = []
    flight = None
    stream = None

    def bind(self, world) -> "NullObserver":
        world.obs = self
        return self

    def attach_flight(self, recorder) -> "NullObserver":
        return self

    def attach_stream(self, analyzer) -> "NullObserver":
        return self

    def trace_context(self, *args, **kwargs) -> None:
        return None

    def begin(self, *args, **kwargs) -> int:
        return -1

    def end(self, *args, **kwargs) -> None:
        pass

    def event(self, *args, **kwargs) -> None:
        pass

    def query_issued(self, *args, **kwargs) -> int:
        return -1

    def query_alias(self, *args, **kwargs) -> None:
        pass

    def query_completed(self, *args, **kwargs) -> None:
        pass

    def query_closed(self, *args, **kwargs) -> None:
        pass

    def local_eval(self, *args, **kwargs) -> None:
        pass

    def filter_promoted(self, *args, **kwargs) -> None:
        pass

    def result_merged(self, *args, **kwargs) -> None:
        pass

    def failover(self, *args, **kwargs) -> None:
        pass

    def orphan_reaped(self, *args, **kwargs) -> None:
        pass

    def deadline_close(self, *args, **kwargs) -> None:
        pass

    def subscription_installed(self, *args, **kwargs) -> int:
        return -1

    def subscription_refreshed(self, *args, **kwargs) -> None:
        pass

    def subscription_cancelled(self, *args, **kwargs) -> None:
        pass

    def delta_sent(self, *args, **kwargs) -> None:
        pass

    def delta_merged(self, *args, **kwargs) -> None:
        pass

    def data_updated(self, *args, **kwargs) -> None:
        pass

    def frame_duplicated(self, *args, **kwargs) -> None:
        pass

    def frame_sent(self, *args, **kwargs) -> None:
        pass

    def frame_delivered(self, *args, **kwargs) -> None:
        pass

    def frame_dropped(self, *args, **kwargs) -> None:
        pass

    def fault(self, *args, **kwargs) -> None:
        pass

    def query_aborted_by_crash(self, *args, **kwargs) -> None:
        pass

    def finalize(self, result=None) -> None:
        pass

    def __len__(self) -> int:
        return 0


#: Process-wide shared no-op observer — the default ``World.obs``.
NULL_OBSERVER = NullObserver()
