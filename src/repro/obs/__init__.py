"""Observability layer: query-lifecycle tracing, metrics, profiling.

``repro.obs`` is the substrate every perf/robustness change reports
through:

* :class:`Observer` — span-based tracing of every ``(id, cnt)`` query
  through issue, per-hop forwarding, local-skyline evaluation, filter
  promotion, result merge / ACK / retransmission, and final delivery,
  with simulation *and* wall time plus fault annotations.
* :class:`MetricsRegistry` — named counters / gauges / histograms with
  a true no-op default (:data:`NULL_REGISTRY`), unifying the view over
  the legacy ``TrafficStats`` / ``ComparisonCounter`` / ``AccessStats``
  families.
* Exporters — JSONL event dumps, Chrome trace-event / Perfetto JSON
  timelines, and per-query text summaries.
* :class:`PhaseProfiler` — wall-time attribution across protocol
  phases, in the ``BENCH_*.json`` gate shape.

Enable per run by passing an observer to
:func:`~repro.protocol.coordinator.run_manet_simulation`, per process
with :func:`configure_telemetry` (the CLI's ``--obs`` flag), or via the
``REPRO_OBS`` environment variable (a directory for per-run telemetry;
``off`` / empty disables). The off path is guard-only — see
``docs/observability.md`` for the overhead contract.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional

from .causal import (
    CausalEvent,
    CausalGraph,
    QueryTrace,
    TraceContext,
    build_causal_graph,
    trace_of,
)
from .exporters import (
    SpanNode,
    build_query_trees,
    export_chrome_trace,
    export_jsonl,
    query_summary,
    validate_chrome_trace,
    write_chrome_trace,
)
from .flight import (
    BLACKBOX_SCHEMA,
    FlightDump,
    FlightEntry,
    FlightRecorder,
    load_blackbox,
    render_dump,
    validate_blackbox,
)
from .observer import (
    NULL_OBSERVER,
    EventRecord,
    NullObserver,
    Observer,
    SpanRecord,
    query_key_of,
)
from .profiler import PHASE_SCHEMA, PhaseProfiler
from .registry import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)
from .ring import RING_ENV, parse_ring_capacity, resolve_ring_capacity
from .stream import (
    HEALTH_SCHEMA,
    Anomaly,
    Detector,
    StreamAnalyzer,
    validate_health_report,
)

__all__ = [
    "Anomaly",
    "BLACKBOX_SCHEMA",
    "CausalEvent",
    "CausalGraph",
    "Counter",
    "Detector",
    "EventRecord",
    "FlightDump",
    "FlightEntry",
    "FlightRecorder",
    "Gauge",
    "HEALTH_SCHEMA",
    "Histogram",
    "MetricsRegistry",
    "NULL_OBSERVER",
    "NULL_REGISTRY",
    "NullObserver",
    "NullRegistry",
    "Observer",
    "PHASE_SCHEMA",
    "PhaseProfiler",
    "QueryTrace",
    "RING_ENV",
    "SpanNode",
    "SpanRecord",
    "StreamAnalyzer",
    "TraceContext",
    "build_causal_graph",
    "build_query_trees",
    "configure_telemetry",
    "export_chrome_trace",
    "export_jsonl",
    "load_blackbox",
    "parse_ring_capacity",
    "query_key_of",
    "query_summary",
    "render_dump",
    "resolve_ring_capacity",
    "telemetry_root",
    "trace_of",
    "validate_blackbox",
    "validate_chrome_trace",
    "validate_health_report",
    "write_chrome_trace",
]

_OBS_ENV = "REPRO_OBS"
_DISABLED = ("", "off", "none", "0")

#: Process-wide override set by :func:`configure_telemetry` (CLI beats env).
_telemetry_override: Optional[str] = None


def configure_telemetry(directory: Optional[str]) -> None:
    """Set the process-wide telemetry directory (the ``--obs`` flag).

    ``"off"`` disables telemetry even if ``REPRO_OBS`` is set; ``None``
    leaves the current setting untouched.
    """
    global _telemetry_override
    if directory is not None:
        _telemetry_override = directory


def telemetry_root() -> Optional[Path]:
    """Effective telemetry directory, or None when telemetry is off.

    Resolution: :func:`configure_telemetry` override, then the
    ``REPRO_OBS`` environment variable. Experiment sweeps write one
    trace + metrics document per computed run under this directory,
    next to their cached results.
    """
    raw = (
        _telemetry_override
        if _telemetry_override is not None
        else os.environ.get(_OBS_ENV)
    )
    if raw is None or raw.strip().lower() in _DISABLED:
        return None
    return Path(raw)
