"""Phase profiler: wall-time attribution across protocol phases.

Two complementary sources feed one report:

* **Coarse run phases** — :meth:`PhaseProfiler.phase` is a context
  manager the coordinator (and any benchmark) wraps around build /
  simulate / collect stages; nested phases attribute time to the
  innermost frame, so totals sum to elapsed wall time without double
  counting.
* **Span-derived phases** — :meth:`PhaseProfiler.add_spans` folds an
  observer's span wall times in, keyed ``<cat>.<name>`` (e.g.
  ``core.local-eval``), which breaks a run's simulate phase down by
  protocol activity.

:meth:`PhaseProfiler.to_bench_json` emits the same shape the
``BENCH_*.json`` gates consume (a ``schema`` tag plus a flat
``phases`` mapping), so ``benchmarks/report.py`` can fold profiler
output into the trend table alongside the microbenchmarks.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, List, Optional

__all__ = ["PhaseProfiler", "PHASE_SCHEMA"]

PHASE_SCHEMA = "bench_obs_phases/v1"


class PhaseProfiler:
    """Accumulates exclusive wall time per named phase."""

    def __init__(self) -> None:
        self._totals: Dict[str, float] = {}
        self._counts: Dict[str, int] = {}
        self._stack: List[List] = []  # [name, started, child_time]

    # -- coarse phases -------------------------------------------------------

    @contextmanager
    def phase(self, name: str):
        """Attribute the wall time inside the block to ``name``.

        Exclusive semantics: time spent in a nested phase is charged to
        the nested phase only, so a report's totals are additive.
        """
        frame = [name, time.perf_counter(), 0.0]
        self._stack.append(frame)
        try:
            yield self
        finally:
            elapsed = time.perf_counter() - frame[1]
            self._stack.pop()
            self._add(name, elapsed - frame[2])
            if self._stack:
                self._stack[-1][2] += elapsed

    def _add(self, name: str, seconds: float) -> None:
        self._totals[name] = self._totals.get(name, 0.0) + max(0.0, seconds)
        self._counts[name] = self._counts.get(name, 0) + 1

    # -- span-derived phases -------------------------------------------------

    def add_spans(self, observer) -> None:
        """Fold an observer's closed spans in, keyed ``<cat>.<name>``."""
        for span in observer.spans:
            wall = span.wall_duration
            if wall is not None:
                self._add(f"{span.cat}.{span.name}", wall)

    # -- reporting -----------------------------------------------------------

    def report(self) -> Dict[str, Dict[str, float]]:
        """``{phase: {"wall_s": total, "count": n}}``, sorted by name."""
        return {
            name: {"wall_s": self._totals[name], "count": self._counts[name]}
            for name in sorted(self._totals)
        }

    @property
    def total_wall_s(self) -> float:
        """Sum of all attributed wall time."""
        return sum(self._totals.values())

    def to_bench_json(self, smoke: Optional[bool] = None) -> Dict:
        """BENCH-gate-shaped document (``schema`` + flat ``phases``)."""
        doc = {"schema": PHASE_SCHEMA, "phases": self.report(),
               "total_wall_s": self.total_wall_s}
        if smoke is not None:
            doc["smoke"] = smoke
        return doc

    def render(self) -> str:
        """Text table sorted by descending wall time."""
        if not self._totals:
            return "(no phases recorded)"
        total = self.total_wall_s or 1.0
        rows = sorted(self._totals.items(), key=lambda kv: -kv[1])
        lines = [f"{'phase':<28} {'wall_s':>10} {'share':>7} {'count':>8}"]
        for name, seconds in rows:
            lines.append(
                f"{name:<28} {seconds:>10.4f} {seconds / total:>6.1%} "
                f"{self._counts[name]:>8}"
            )
        lines.append(f"{'total':<28} {self.total_wall_s:>10.4f}")
        return "\n".join(lines)
