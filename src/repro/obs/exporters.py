"""Trace exporters: JSONL, Chrome trace-event (Perfetto), text summary.

Three read-side views over one :class:`~repro.obs.observer.Observer`:

* :func:`export_jsonl` — one JSON object per span/event, the archival
  format sweeps drop next to their cached results.
* :func:`export_chrome_trace` — the Chrome trace-event JSON object
  format (loadable in ``ui.perfetto.dev`` or ``chrome://tracing``):
  complete events (``ph: "X"``) for spans, instant events (``ph: "i"``)
  for milestones, with simulation microseconds on the timeline, one
  track (tid) per device, and query keys in ``args``.
* :func:`query_summary` — the per-query text table a human reads first:
  issue/completion times, contributions, frames and bytes attributed to
  the query, and every fault overlapping its lifetime.

:func:`validate_chrome_trace` checks an exported document against the
trace-event schema (required keys, types, monotone-positive durations);
the CI obs smoke job gates on it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, IO, List, Optional, Tuple, Union

from .observer import EventRecord, Observer, SpanRecord

__all__ = [
    "SpanNode",
    "build_query_trees",
    "export_jsonl",
    "export_chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
    "query_summary",
]

QueryKey = Tuple[int, int]


def _jsonify(value: Any) -> Any:
    """Best-effort conversion of attr values to JSON-safe types."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(_jsonify(v) for v in value)
    if isinstance(value, dict):
        return {str(k): _jsonify(v) for k, v in value.items()}
    return repr(value)


# ---------------------------------------------------------------------------
# Span trees
# ---------------------------------------------------------------------------


@dataclass
class SpanNode:
    """One span plus its children — the materialized tree view."""

    span: SpanRecord
    children: List["SpanNode"] = field(default_factory=list)
    events: List[EventRecord] = field(default_factory=list)

    def walk(self):
        """Depth-first iteration over this node and every descendant."""
        yield self
        for child in self.children:
            yield from child.walk()

    def leaf_intervals(self) -> List[Tuple[float, float]]:
        """Sim-time ``(t0, t1)`` of every closed leaf span under this node."""
        out = []
        for node in self.walk():
            if not node.children and node.span.t1 is not None:
                out.append((node.span.t0, node.span.t1))
        return out


def build_query_trees(observer: Observer) -> Dict[QueryKey, SpanNode]:
    """Assemble one span tree per observed query.

    Roots are ``query`` spans; children attach via their recorded
    parent sid, falling back to the query root for spans that carry a
    query key but no explicit parent. Instant events attach to the root
    of their query's tree.
    """
    nodes: Dict[int, SpanNode] = {s.sid: SpanNode(s) for s in observer.spans}
    trees: Dict[QueryKey, SpanNode] = {}
    for span in observer.spans:
        if span.name == "query" and span.query is not None:
            trees.setdefault(span.query, nodes[span.sid])
    for span in observer.spans:
        if span.name == "query":
            continue
        node = nodes[span.sid]
        parent = nodes.get(span.parent) if span.parent is not None else None
        if parent is None and span.query is not None:
            parent = trees.get(span.query)
        if parent is not None:
            parent.children.append(node)
    # Events recorded under a re-issued DF key carry the alias key; the
    # observer's root map points those at the root query's span.
    roots = getattr(observer, "_query_roots", {})
    for event in observer.events:
        if event.query is None:
            continue
        tree = trees.get(event.query)
        if tree is None:
            sid = roots.get(event.query)
            if sid is not None and sid in nodes:
                tree = nodes[sid]
        if tree is not None:
            tree.events.append(event)
    return trees


# ---------------------------------------------------------------------------
# JSONL
# ---------------------------------------------------------------------------


def export_jsonl(observer: Observer, fp: Union[str, IO[str]]) -> int:
    """Dump every span and event as JSON lines; returns the line count.

    Spans come first (open order), then events (record order); each line
    carries a ``rec`` discriminator (``span`` / ``event``).
    """
    own = isinstance(fp, str)
    handle = open(fp, "w") if own else fp
    count = 0
    try:
        for span in observer.spans:
            handle.write(json.dumps({
                "rec": "span",
                "sid": span.sid,
                "parent": span.parent,
                "name": span.name,
                "cat": span.cat,
                "query": list(span.query) if span.query else None,
                "node": span.node,
                "t0": span.t0,
                "t1": span.t1,
                "wall_s": span.wall_duration,
                "attrs": _jsonify(span.attrs),
            }, sort_keys=True))
            handle.write("\n")
            count += 1
        for event in observer.events:
            handle.write(json.dumps({
                "rec": "event",
                "name": event.name,
                "time": event.time,
                "query": list(event.query) if event.query else None,
                "node": event.node,
                "attrs": _jsonify(event.attrs),
            }, sort_keys=True))
            handle.write("\n")
            count += 1
    finally:
        if own:
            handle.close()
    return count


# ---------------------------------------------------------------------------
# Chrome trace-event / Perfetto JSON
# ---------------------------------------------------------------------------

_US = 1_000_000.0  # trace-event timestamps are microseconds


def export_chrome_trace(observer: Observer) -> Dict[str, Any]:
    """Build a Chrome trace-event JSON document from an observer.

    The timeline is *simulation* time in microseconds; each device gets
    its own track (tid = node id + 1; tid 0 is the world track for
    node-less records). Span wall time rides along in ``args.wall_us``.
    """
    events: List[Dict[str, Any]] = []
    tids = set()

    def tid_of(node: Optional[int]) -> int:
        tid = 0 if node is None else node + 1
        tids.add(tid)
        return tid

    for span in observer.spans:
        t1 = span.t1 if span.t1 is not None else span.t0
        args = {"sid": span.sid}
        if span.query is not None:
            args["query"] = f"{span.query[0]}:{span.query[1]}"
        if span.wall_duration is not None:
            args["wall_us"] = span.wall_duration * _US
        args.update(_jsonify(span.attrs))
        events.append({
            "name": span.name,
            "cat": span.cat,
            "ph": "X",
            "ts": span.t0 * _US,
            "dur": max(0.0, (t1 - span.t0) * _US),
            "pid": 0,
            "tid": tid_of(span.node),
            "args": args,
        })
    for event in observer.events:
        args = {}
        if event.query is not None:
            args["query"] = f"{event.query[0]}:{event.query[1]}"
        args.update(_jsonify(event.attrs))
        events.append({
            "name": event.name,
            "cat": "event",
            "ph": "i",
            "s": "t",
            "ts": event.time * _US,
            "pid": 0,
            "tid": tid_of(event.node),
            "args": args,
        })
    for tid in sorted(tids):
        name = "world" if tid == 0 else f"device {tid - 1}"
        events.append({
            "name": "thread_name",
            "ph": "M",
            "pid": 0,
            "tid": tid,
            "args": {"name": name},
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(observer: Observer, path: str) -> None:
    """Export and write the trace-event document to ``path``."""
    with open(path, "w") as handle:
        json.dump(export_chrome_trace(observer), handle)
        handle.write("\n")


_PHASES = {"X", "i", "I", "M", "B", "E", "b", "e", "n", "C"}


def validate_chrome_trace(doc: Any) -> List[str]:
    """Validate a trace-event document; returns a list of violations
    (empty = valid). Checked: top-level shape, required per-event keys,
    numeric non-negative ``ts``/``dur``, known phase codes.

    A document with an empty ``traceEvents`` list is *valid*: a run
    that observed no spans (no queries issued, observer bound too
    late) still exports a well-formed trace that Perfetto loads —
    whether an empty run deserves a warning is the caller's call
    (the ``repro trace`` command warns and exits nonzero)."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-list traceEvents"]
    if not events:
        return problems  # explicitly valid: the empty trace
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if ph not in _PHASES:
            problems.append(f"{where}: unknown phase {ph!r}")
            continue
        if not isinstance(event.get("name"), str):
            problems.append(f"{where}: missing name")
        if ph == "M":
            continue  # metadata events carry no timestamp
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: bad ts {ts!r}")
        if "pid" not in event or "tid" not in event:
            problems.append(f"{where}: missing pid/tid")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: bad dur {dur!r}")
    return problems


# ---------------------------------------------------------------------------
# Text summary
# ---------------------------------------------------------------------------


def query_summary(observer: Observer) -> str:
    """Per-query lifecycle table, one row per root query span.

    Columns: query key, originating node, issue time, completion time
    (``-`` if the completion condition never fired), response seconds,
    devices merged, protocol frames and bytes attributed to the query,
    and the fault transitions overlapping its open interval.
    """
    trees = build_query_trees(observer)
    header = (
        f"{'query':>9} {'origin':>6} {'issue':>10} {'complete':>10} "
        f"{'resp_s':>8} {'merged':>6} {'frames':>6} {'bytes':>9}  faults"
    )
    lines = [header, "-" * len(header)]
    for key in observer.query_keys():
        tree = trees.get(key)
        if tree is None:
            continue
        root = tree.span
        completion = root.attrs.get("completion_time")
        response = None if completion is None else completion - root.t0
        merged = sum(1 for e in tree.events if e.name == "result.merged")
        frames = 0
        traffic_bytes = 0
        for node in tree.walk():
            if node.span.name == "hop":
                frames += 1
                traffic_bytes += node.span.attrs.get("bytes", 0)
        for event in tree.events:
            if event.name == "frame.broadcast":
                frames += 1
                traffic_bytes += event.attrs.get("bytes", 0)
        t1 = root.t1 if root.t1 is not None else float("inf")
        faults = observer.faults_during(root.t0, t1)
        fault_note = ",".join(sorted({f.name for f in faults})) or "-"
        if root.attrs.get("aborted_by_crash"):
            fault_note += " [aborted]"
        lines.append(
            f"{key[0]}:{key[1]:<7} {root.node:>6} {root.t0:>10.2f} "
            + (f"{completion:>10.2f} " if completion is not None
               else f"{'-':>10} ")
            + (f"{response:>8.3f} " if response is not None else f"{'-':>8} ")
            + f"{merged:>6} {frames:>6} {traffic_bytes:>9}  {fault_note}"
        )
    if len(lines) == 2:
        lines.append("(no queries observed)")
    return "\n".join(lines)
