"""Per-node flight recorder: bounded event rings + post-mortem dumps.

Every observed device gets a bounded ring of its most recent protocol,
net, and fault events — cheap enough to leave on for long runs, rich
enough to answer "what was this node doing just before it died?". The
:class:`~repro.obs.observer.Observer` mirrors its hooks into the
recorder (attach with :meth:`Observer.attach_flight`); on a trigger —
node crash, query deadline expiry, or a ``resilience.invariants``
violation — the recorder snapshots the affected ring *and the causal
slice that led to the trigger* into an immutable :class:`FlightDump`.

Dumps are inspectable in-process, serializable as a ``blackbox.json``
document (``schema: obs_blackbox/v1``), and rendered by the ``repro
blackbox`` CLI command. Recording is passive: the recorder never
schedules events, never consumes randomness, and never touches
protocol state, so a run with a flight recorder attached stays
bit-identical to a plain run.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, Deque, List, Optional, Tuple

from .ring import resolve_ring_capacity

__all__ = [
    "BLACKBOX_SCHEMA",
    "DEFAULT_FLIGHT_CAPACITY",
    "FlightEntry",
    "FlightDump",
    "FlightRecorder",
    "load_blackbox",
    "render_dump",
    "validate_blackbox",
]

QueryKey = Tuple[int, int]

BLACKBOX_SCHEMA = "obs_blackbox/v1"

#: Ring depth per node when neither config nor ``REPRO_OBS_RING`` says
#: otherwise — deep enough to cover a query lifetime at smoke scale,
#: shallow enough to bound memory at 10k nodes.
DEFAULT_FLIGHT_CAPACITY = 256


@dataclass
class FlightEntry:
    """One recorded moment on a node's ring."""

    time: float
    kind: str
    query: Optional[QueryKey] = None
    info: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "time": self.time,
            "kind": self.kind,
            "query": list(self.query) if self.query is not None else None,
            "info": {k: _jsonable(v) for k, v in self.info.items()},
        }

    def render(self) -> str:
        query = f" q={self.query[0]}:{self.query[1]}" if self.query else ""
        info = " ".join(f"{k}={v}" for k, v in sorted(self.info.items()))
        return f"[{self.time:10.3f}] {self.kind:<20}{query} {info}".rstrip()


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(_jsonable(v) for v in value)
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return repr(value)


@dataclass
class FlightDump:
    """One post-mortem snapshot, frozen at trigger time.

    Attributes:
        trigger: ``node-crash`` / ``deadline-expiry`` /
            ``invariant-violation``.
        time: Simulation time of the trigger.
        node: The affected device (None for world-level triggers, whose
            ``entries`` then hold the tail of *every* ring).
        query: The query involved, when the trigger names one.
        detail: Free-form trigger description (the violated invariant,
            the crash fault's attrs, ...).
        entries: The ring snapshot, oldest first. For world-level dumps
            each entry's info carries its ``node``.
        causal: JSON-safe causal ancestry (issue → ... → last event at
            the node for the triggering query), oldest first.
    """

    trigger: str
    time: float
    node: Optional[int]
    query: Optional[QueryKey]
    detail: str
    entries: List[Dict[str, Any]]
    causal: List[Dict[str, Any]]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trigger": self.trigger,
            "time": self.time,
            "node": self.node,
            "query": list(self.query) if self.query is not None else None,
            "detail": self.detail,
            "entries": self.entries,
            "causal": self.causal,
        }


class FlightRecorder:
    """Bounded per-node rings plus the dumps triggered so far."""

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is None:
            capacity = resolve_ring_capacity(default=DEFAULT_FLIGHT_CAPACITY)
            if capacity is None:
                # REPRO_OBS_RING=unbounded is a tracer setting; a flight
                # recorder always needs a bound, so it keeps its default.
                capacity = DEFAULT_FLIGHT_CAPACITY
        if capacity < 1:
            raise ValueError("flight recorder capacity must be >= 1")
        self.capacity = capacity
        self._rings: Dict[int, Deque[FlightEntry]] = {}
        self.dumps: List[FlightDump] = []
        self.evicted = 0

    # -- recording -----------------------------------------------------------

    def note(
        self,
        node: Optional[int],
        kind: str,
        time: float,
        query: Optional[QueryKey] = None,
        /,
        **info: Any,
    ) -> None:
        """Append one entry to ``node``'s ring (no-op for node=None).

        The leading parameters are positional-only so event attributes
        named ``kind`` / ``time`` / ``query`` (which some protocol
        events legitimately carry) land in ``info`` instead of
        colliding."""
        if node is None:
            return
        ring = self._rings.get(node)
        if ring is None:
            ring = deque(maxlen=self.capacity)
            self._rings[node] = ring
        if len(ring) == self.capacity:
            self.evicted += 1
        ring.append(FlightEntry(time=time, kind=kind, query=query, info=info))

    def snapshot(self, node: int) -> List[FlightEntry]:
        """Copy of ``node``'s ring, oldest first."""
        return list(self._rings.get(node, ()))

    def nodes(self) -> List[int]:
        """Nodes with at least one recorded entry, ascending."""
        return sorted(self._rings)

    # -- triggers ------------------------------------------------------------

    def dump(
        self,
        trigger: str,
        time: float,
        node: Optional[int] = None,
        query: Optional[QueryKey] = None,
        detail: str = "",
        causal: Optional[List[Dict[str, Any]]] = None,
        tail: int = 16,
    ) -> FlightDump:
        """Freeze a post-mortem snapshot and append it to :attr:`dumps`.

        Node-level triggers dump that node's whole ring; world-level
        triggers (``node=None``) dump the last ``tail`` entries of every
        ring, each annotated with its node.
        """
        if node is not None:
            entries = [e.to_dict() for e in self.snapshot(node)]
        else:
            entries = []
            for owner in self.nodes():
                for entry in self.snapshot(owner)[-tail:]:
                    record = entry.to_dict()
                    record["node"] = owner
                    entries.append(record)
            entries.sort(key=lambda e: e["time"])
        dump = FlightDump(
            trigger=trigger,
            time=time,
            node=node,
            query=query,
            detail=detail,
            entries=entries,
            causal=list(causal or ()),
        )
        self.dumps.append(dump)
        return dump

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """The ``blackbox.json`` document."""
        return {
            "schema": BLACKBOX_SCHEMA,
            "capacity": self.capacity,
            "evicted": self.evicted,
            "nodes": {
                str(node): [e.to_dict() for e in self.snapshot(node)]
                for node in self.nodes()
            },
            "dumps": [d.to_dict() for d in self.dumps],
        }

    def write_json(self, path) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    def __len__(self) -> int:
        return sum(len(ring) for ring in self._rings.values())


def validate_blackbox(doc: Any) -> List[str]:
    """Schema check of a blackbox document; returns violations."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    if doc.get("schema") != BLACKBOX_SCHEMA:
        problems.append(f"schema must be {BLACKBOX_SCHEMA!r}")
    if not isinstance(doc.get("capacity"), int) or doc.get("capacity", 0) < 1:
        problems.append("capacity must be a positive integer")
    if not isinstance(doc.get("nodes"), dict):
        problems.append("nodes must be an object")
    dumps = doc.get("dumps")
    if not isinstance(dumps, list):
        problems.append("dumps must be a list")
        return problems
    for i, dump in enumerate(dumps):
        where = f"dumps[{i}]"
        if not isinstance(dump, dict):
            problems.append(f"{where}: not an object")
            continue
        for fld in ("trigger", "time", "entries", "causal"):
            if fld not in dump:
                problems.append(f"{where}: missing {fld}")
        if not isinstance(dump.get("entries", []), list):
            problems.append(f"{where}: entries must be a list")
        if not isinstance(dump.get("causal", []), list):
            problems.append(f"{where}: causal must be a list")
    return problems


def load_blackbox(path) -> Dict[str, Any]:
    """Read and validate a ``blackbox.json``; raises on schema errors."""
    with open(path) as handle:
        doc = json.load(handle)
    problems = validate_blackbox(doc)
    if problems:
        raise ValueError(f"{path}: " + "; ".join(problems))
    return doc


def render_dump(dump: Dict[str, Any], tail: int = 12) -> str:
    """Human-readable post-mortem of one dump dict."""
    node = dump.get("node")
    query = dump.get("query")
    header = (
        f"=== {dump.get('trigger')} at t={dump.get('time', 0.0):.3f}"
        + (f" node={node}" if node is not None else " (world)")
        + (f" query={query[0]}:{query[1]}" if query else "")
        + " ==="
    )
    lines = [header]
    if dump.get("detail"):
        lines.append(f"  {dump['detail']}")
    entries = dump.get("entries", [])
    if entries:
        lines.append(f"  last {min(tail, len(entries))} of "
                     f"{len(entries)} ring entries:")
        for entry in entries[-tail:]:
            info = entry.get("info", {})
            owner = entry.get("node")
            extra = " ".join(f"{k}={v}" for k, v in sorted(info.items()))
            q = entry.get("query")
            lines.append(
                f"    [{entry.get('time', 0.0):10.3f}] "
                + (f"n{owner} " if owner is not None and node is None else "")
                + f"{entry.get('kind', '?'):<20}"
                + (f" q={q[0]}:{q[1]}" if q else "")
                + (f" {extra}" if extra else "")
            )
    causal = dump.get("causal", [])
    if causal:
        lines.append("  causal slice (issue -> trigger):")
        for event in causal:
            lines.append(
                f"    [{event.get('time', 0.0):10.3f}] "
                f"{event.get('kind', '?'):<8} cid={event.get('cid')} "
                f"node={event.get('node')}"
                + (f" {event['frame_kind']}" if event.get("frame_kind") else "")
                + (f" [{event['note']}]" if event.get("note") else "")
            )
    return "\n".join(lines)
