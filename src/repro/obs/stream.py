"""Streaming metrics + anomaly detection over a live observer.

A :class:`StreamAnalyzer` rides along with an
:class:`~repro.obs.observer.Observer` (attach with
:meth:`Observer.attach_stream`) and aggregates the metrics registry
into fixed sim-time windows *as the run executes*: per-window counter
deltas become rates, raw samples (coverage at close, local-eval wall
time, delta sizes) become per-window p50/p99. No simulation events are
scheduled — the analyzer advances lazily from the observer's own
hooks, so an analyzed run is bit-identical to a plain one.

On every closed window the analyzer runs its detectors, modeled on the
earthgecko skyline analyzer's algorithm battery: a value is anomalous
only when *both* the median-absolute-deviation test and the 3-sigma
test agree against the window history (a consensus of two, which is
what keeps fault-free runs at zero false positives), and only past an
absolute floor (a "spike" of one retransmission is noise, not an
incident). High-side rate detectors judge against the *active*
(nonzero) windows of their history: protocol traffic is event-driven
— long idle stretches punctuated by query floods — so a baseline that
includes the idle windows has median 0 and flags every legitimate
flood. Comparing bursts to previous bursts is what lets a healthy
bursty run stay quiet. Shipped detectors flag retransmission spikes
(``protocol.results.retransmits``), broadcast storms (``net.tx.frames``
above anything previously seen), duplicate storms (``net.dup.frames``
— the receiver-side dedup hits a duplication fault causes), recovery
churn (token re-issues + failovers + deadline closes), and coverage
collapse (per-query coverage at close, low side).

The run's verdict ships as a machine-readable health report
(``schema: obs_health/v1``) next to the telemetry bundle, and as a
``repro top``-style text dashboard. Detector recall/precision is
pinned against the seeded ``chaos_sweep`` fault schedules in
``benchmarks/obs_overhead.py`` (injected faults are ground truth).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "HEALTH_SCHEMA",
    "Anomaly",
    "Detector",
    "DEFAULT_DETECTORS",
    "StreamAnalyzer",
    "validate_health_report",
]

HEALTH_SCHEMA = "obs_health/v1"

#: Synthetic rate series: re-issues + failovers + deadline closes per
#: window — the originator-observable "the protocol is recovering"
#: signal, summed because each alone is sparse.
RECOVERY_SERIES = "derived.recovery_actions"
_RECOVERY_COUNTERS = (
    "protocol.token.reissues",
    "resilience.failovers",
    "resilience.deadline_closes",
)


def _median(values: List[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def _percentile(values: List[float], q: float) -> Optional[float]:
    """Linear-interpolated percentile (q in [0, 100])."""
    if not values:
        return None
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * q / 100.0
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    frac = rank - low
    return ordered[low] * (1.0 - frac) + ordered[high] * frac


@dataclass(frozen=True)
class Detector:
    """One anomaly detector's configuration.

    Attributes:
        name: Detector id reported on anomalies.
        series: Rate series (``kind="rate"``) or sample series
            (``kind="sample"``) it watches.
        kind: ``rate`` (per-window counter deltas, checked at window
            close) or ``sample`` (raw observations, checked per sample).
        direction: ``high`` flags spikes, ``low`` flags collapses.
        floor: Absolute gate — ``high`` detectors ignore values below
            it, ``low`` detectors ignore values above it. This is the
            noise/incident line that keeps fault-free runs clean; set
            it above the largest burst the *workload itself* produces
            (simultaneous query floods are traffic, not storms).
        min_history: Prior windows/samples required before judging.
            For ``high`` rate detectors this counts *active* (nonzero)
            windows — the baseline a burst is compared against.
        above_peak: ``high`` only — additionally require the value to
            exceed every historical value (for series with legitimate
            recurring bursts, e.g. flood waves at query issue).
    """

    name: str
    series: str
    kind: str = "rate"
    direction: str = "high"
    floor: float = 0.0
    min_history: int = 6
    above_peak: bool = False


DEFAULT_DETECTORS: Tuple[Detector, ...] = (
    Detector(name="retransmission-spike",
             series="protocol.results.retransmits", floor=3.0),
    # Floor calibrated against the chaos harness: simultaneous BF
    # floods at smoke scale legitimately burst past 100 frames per
    # window; a storm (echo loops, fault-amplified refloods) compounds
    # per hop and clears 150 fast.
    Detector(name="broadcast-storm", series="net.tx.frames",
             floor=150.0, above_peak=True),
    Detector(name="duplicate-storm", series="net.dup.frames", floor=3.0),
    # Floor 3: lossy-but-healthy runs close the odd query by deadline;
    # three recovery actions inside one window is the protocol visibly
    # fighting something.
    Detector(name="recovery-churn", series=RECOVERY_SERIES, floor=3.0),
    Detector(name="coverage-collapse", series="protocol.coverage",
             kind="sample", direction="low", floor=0.5, min_history=2),
)


@dataclass
class Anomaly:
    """One detector firing."""

    time: float
    detector: str
    series: str
    value: float
    baseline: float
    score: float
    window: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "time": self.time,
            "detector": self.detector,
            "series": self.series,
            "value": self.value,
            "baseline": self.baseline,
            "score": self.score,
            "window": self.window,
        }


@dataclass
class _SampleSeries:
    values: List[float] = field(default_factory=list)
    times: List[float] = field(default_factory=list)
    window_values: List[float] = field(default_factory=list)


class StreamAnalyzer:
    """Sliding-window aggregation + online anomaly detection."""

    def __init__(
        self,
        window: float = 5.0,
        history: int = 24,
        mad_threshold: float = 3.0,
        sigma_threshold: float = 3.0,
        detectors: Tuple[Detector, ...] = DEFAULT_DETECTORS,
    ) -> None:
        if window <= 0:
            raise ValueError("window must be > 0")
        self.window = window
        self.history = history
        self.mad_threshold = mad_threshold
        self.sigma_threshold = sigma_threshold
        self.detectors = detectors
        self.rates: Dict[str, List[float]] = {}
        self.samples: Dict[str, _SampleSeries] = {}
        self.anomalies: List[Anomaly] = []
        self.windows_closed = 0
        self._registry = None
        self._next_close = window
        self._last_counters: Dict[str, float] = {}
        self._rate_detectors = [d for d in detectors if d.kind == "rate"]
        self._sample_detectors = {
            d.series: d for d in detectors if d.kind == "sample"
        }

    # -- wiring --------------------------------------------------------------

    def attach(self, registry) -> "StreamAnalyzer":
        """Bind the metrics registry whose counters become rates."""
        self._registry = registry
        return self

    # -- ingestion -----------------------------------------------------------

    def advance(self, now: float) -> None:
        """Close every window boundary at or before ``now``. Called from
        the observer's hooks — cheap when no boundary passed (one
        compare)."""
        while now >= self._next_close:
            self._close_window(self._next_close)
            self._next_close += self.window

    def observe(self, series: str, value: float, now: float) -> None:
        """Record one raw sample (coverage, wall seconds, sizes)."""
        self.advance(now)
        record = self.samples.get(series)
        if record is None:
            record = _SampleSeries()
            self.samples[series] = record
        detector = self._sample_detectors.get(series)
        if detector is not None:
            self._judge_sample(detector, value, record.values, now)
        record.values.append(value)
        record.times.append(now)
        record.window_values.append(value)

    def finalize(self, now: float) -> None:
        """Close the trailing partial window at end of run."""
        self.advance(now)
        if now > self._next_close - self.window:
            self._close_window(now)
            self._next_close = (
                (now // self.window) + 1
            ) * self.window

    # -- windowing -----------------------------------------------------------

    def _counter_values(self) -> Dict[str, float]:
        registry = self._registry
        if registry is None:
            return {}
        values = getattr(registry, "counter_values", None)
        return values() if values is not None else {}

    def _close_window(self, end: float) -> None:
        counters = self._counter_values()
        deltas: Dict[str, float] = {}
        for name, value in counters.items():
            delta = value - self._last_counters.get(name, 0.0)
            if delta or name in self.rates:
                deltas[name] = delta
        self._last_counters = counters
        deltas[RECOVERY_SERIES] = sum(
            deltas.get(name, 0.0) for name in _RECOVERY_COUNTERS
        )
        window_index = self.windows_closed
        self.windows_closed += 1
        for name, delta in deltas.items():
            series = self.rates.setdefault(name, [])
            while len(series) < window_index:
                series.append(0.0)
            series.append(delta)
        for name, series in self.rates.items():
            while len(series) < self.windows_closed:
                series.append(0.0)
        for detector in self._rate_detectors:
            series = self.rates.get(detector.series)
            if series is None:
                continue
            value = series[-1]
            history = series[:-1][-self.history:]
            self._judge(detector, value, history, end, window_index)
        for record in self.samples.values():
            record.window_values = []

    # -- detection -----------------------------------------------------------

    def _consensus(
        self, value: float, history: List[float], direction: str
    ) -> Tuple[bool, float, float]:
        """(anomalous, baseline_median, score) under MAD + 3-sigma
        consensus against ``history``."""
        med = _median(history)
        deviation = value - med if direction == "high" else med - value
        if deviation <= 0:
            return False, med, 0.0
        mad = _median([abs(v - med) for v in history])
        mean = sum(history) / len(history)
        var = sum((v - mean) ** 2 for v in history) / len(history)
        std = var ** 0.5
        mad_score = deviation / mad if mad > 0 else float("inf")
        directional = value - mean if direction == "high" else mean - value
        sigma_score = (
            directional / std if std > 0
            else (float("inf") if directional > 0 else 0.0)
        )
        anomalous = (
            mad_score > self.mad_threshold
            and sigma_score > self.sigma_threshold
        )
        score = min(mad_score, sigma_score)
        if score == float("inf"):
            score = deviation
        return anomalous, med, score

    def _judge(
        self,
        detector: Detector,
        value: float,
        history: List[float],
        now: float,
        window_index: int,
    ) -> None:
        if detector.direction == "high":
            # Event-driven traffic: judge bursts against prior bursts,
            # not against the idle windows between them.
            history = [v for v in history if v > 0]
        if len(history) < detector.min_history:
            return
        if detector.direction == "high" and value < detector.floor:
            return
        if detector.direction == "low" and value > detector.floor:
            return
        if detector.above_peak and history and value <= max(history):
            return
        anomalous, baseline, score = self._consensus(
            value, history, detector.direction
        )
        if anomalous:
            self.anomalies.append(Anomaly(
                time=now, detector=detector.name, series=detector.series,
                value=value, baseline=baseline, score=score,
                window=window_index,
            ))

    def _judge_sample(
        self,
        detector: Detector,
        value: float,
        history: List[float],
        now: float,
    ) -> None:
        if len(history) < detector.min_history:
            return
        if detector.direction == "low" and value > detector.floor:
            return
        if detector.direction == "high" and value < detector.floor:
            return
        anomalous, baseline, score = self._consensus(
            value, history[-self.history:], detector.direction
        )
        if anomalous:
            self.anomalies.append(Anomaly(
                time=now, detector=detector.name, series=detector.series,
                value=value, baseline=baseline, score=score,
                window=self.windows_closed,
            ))

    # -- reporting -----------------------------------------------------------

    def health_report(self) -> Dict[str, Any]:
        """The machine-readable run verdict (``obs_health/v1``)."""
        rates = {}
        for name, series in sorted(self.rates.items()):
            if not any(series):
                continue
            per_second = [v / self.window for v in series]
            rates[name] = {
                "total": sum(series),
                "mean_per_s": sum(per_second) / len(per_second),
                "max_per_s": max(per_second),
                "last_per_s": per_second[-1],
            }
        samples = {}
        for name, record in sorted(self.samples.items()):
            samples[name] = {
                "count": len(record.values),
                "min": min(record.values) if record.values else None,
                "max": max(record.values) if record.values else None,
                "p50": _percentile(record.values, 50.0),
                "p99": _percentile(record.values, 99.0),
            }
        return {
            "schema": HEALTH_SCHEMA,
            "window_s": self.window,
            "windows": self.windows_closed,
            "detectors": [d.name for d in self.detectors],
            "rates": rates,
            "samples": samples,
            "anomalies": [a.to_dict() for a in self.anomalies],
            "healthy": not self.anomalies,
        }

    def render_dashboard(self, width: int = 32) -> str:
        """``repro top``-style text dashboard of the run so far."""
        lines = [
            f"stream: {self.windows_closed} windows x {self.window:g}s, "
            f"{len(self.anomalies)} anomalies",
            f"{'series':<36} {'total':>9} {'max/s':>8}  activity",
        ]
        for name, series in sorted(self.rates.items()):
            if not any(series):
                continue
            lines.append(
                f"{name:<36} {sum(series):>9g} "
                f"{max(series) / self.window:>8.2f}  "
                f"{_sparkline(series, width)}"
            )
        for name, record in sorted(self.samples.items()):
            p50 = _percentile(record.values, 50.0)
            p99 = _percentile(record.values, 99.0)
            lines.append(
                f"{name:<36} {len(record.values):>9} "
                f"{'':>8}  p50={p50:.4g} p99={p99:.4g}"
                if p50 is not None else f"{name:<36} {0:>9}"
            )
        if self.anomalies:
            lines.append("anomalies:")
            for anomaly in self.anomalies:
                lines.append(
                    f"  [{anomaly.time:10.3f}] {anomaly.detector:<22} "
                    f"{anomaly.series} value={anomaly.value:g} "
                    f"baseline={anomaly.baseline:g} "
                    f"score={anomaly.score:.1f}"
                )
        else:
            lines.append("anomalies: none")
        return "\n".join(lines)


_SPARK_LEVELS = " .:-=+*#%@"


def _sparkline(series: List[float], width: int) -> str:
    """Downsampled ASCII activity strip for one window series."""
    if not series:
        return ""
    if len(series) > width:
        # Max-pool into `width` buckets so spikes survive downsampling.
        bucket = len(series) / width
        pooled = [
            max(series[int(i * bucket):max(int((i + 1) * bucket),
                                           int(i * bucket) + 1)])
            for i in range(width)
        ]
    else:
        pooled = series
    peak = max(pooled)
    if peak <= 0:
        return "." * len(pooled)
    out = []
    for value in pooled:
        level = int(value / peak * (len(_SPARK_LEVELS) - 1))
        out.append(_SPARK_LEVELS[level])
    return "".join(out)


def validate_health_report(doc: Any) -> List[str]:
    """Schema check of a health report; returns violations."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    if doc.get("schema") != HEALTH_SCHEMA:
        problems.append(f"schema must be {HEALTH_SCHEMA!r}")
    if not isinstance(doc.get("window_s"), (int, float)) \
            or doc.get("window_s", 0) <= 0:
        problems.append("window_s must be a positive number")
    if not isinstance(doc.get("windows"), int) or doc.get("windows", -1) < 0:
        problems.append("windows must be a non-negative integer")
    if not isinstance(doc.get("rates"), dict):
        problems.append("rates must be an object")
    if not isinstance(doc.get("samples"), dict):
        problems.append("samples must be an object")
    if not isinstance(doc.get("healthy"), bool):
        problems.append("healthy must be a bool")
    anomalies = doc.get("anomalies")
    if not isinstance(anomalies, list):
        problems.append("anomalies must be a list")
        return problems
    for i, anomaly in enumerate(anomalies):
        where = f"anomalies[{i}]"
        if not isinstance(anomaly, dict):
            problems.append(f"{where}: not an object")
            continue
        for fld in ("time", "detector", "series", "value"):
            if fld not in anomaly:
                problems.append(f"{where}: missing {fld}")
    if isinstance(doc.get("healthy"), bool) and isinstance(anomalies, list):
        if doc["healthy"] != (not anomalies):
            problems.append("healthy must equal (no anomalies)")
    return problems
