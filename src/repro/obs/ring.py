"""Validated ring-buffer capacity resolution (``REPRO_OBS_RING``).

Two observability rings are bounded by the same knob: the net-layer
:class:`~repro.net.trace.Tracer` event ring and the per-node
:class:`~repro.obs.flight.FlightRecorder` rings. Capacity resolution
order is explicit config (``ProtocolConfig.obs_ring`` / constructor
argument), then the ``REPRO_OBS_RING`` environment variable, then the
caller's default. An unparsable environment value is a loud
:class:`ValueError` — a silently ignored bound is how flight recorders
quietly stop recording.
"""

from __future__ import annotations

import os
from typing import Optional

__all__ = ["RING_ENV", "parse_ring_capacity", "resolve_ring_capacity"]

RING_ENV = "REPRO_OBS_RING"

#: Values meaning "no bound" (the Tracer's historical default).
_UNBOUNDED = ("unbounded", "none", "off", "")


def parse_ring_capacity(raw: str) -> Optional[int]:
    """Parse one capacity string: a positive integer, or one of
    ``unbounded`` / ``none`` / ``off`` / empty for no bound.

    Raises:
        ValueError: On anything else (including 0 and negatives).
    """
    text = raw.strip().lower()
    if text in _UNBOUNDED:
        return None
    try:
        capacity = int(text)
    except ValueError:
        raise ValueError(
            f"{RING_ENV}: expected a positive integer or 'unbounded', "
            f"got {raw!r}"
        ) from None
    if capacity < 1:
        raise ValueError(
            f"{RING_ENV}: capacity must be >= 1 (or 'unbounded'), "
            f"got {capacity}"
        )
    return capacity


def resolve_ring_capacity(default: Optional[int] = None) -> Optional[int]:
    """The effective ring capacity: ``REPRO_OBS_RING`` if set (validated
    by :func:`parse_ring_capacity`), else ``default``."""
    raw = os.environ.get(RING_ENV)
    if raw is None:
        return default
    return parse_ring_capacity(raw)
