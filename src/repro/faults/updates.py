"""Deterministic data-update schedules: the event path that makes
continuous subscriptions non-trivial.

Tuple *sites* in this reproduction are static — device mobility changes
connectivity, never the answer — so the only thing that can change a
skyline over time is the data itself. A :class:`DataUpdateSchedule` is
the data-plane sibling of :class:`~repro.faults.schedule.FaultSchedule`:
an immutable, time-ordered list of :class:`UpdateEvent` entries, built
explicitly or drawn from one seeded generator, applied to a live run by
:class:`UpdateInjector`.

Because :class:`~repro.storage.relation.Relation` is immutable, an
update never mutates arrays in place: :func:`perturb_relation` builds a
*new* relation (same sites and coordinates, a seeded subset of rows
re-drawn within the schema's value bounds) and the injector swaps it
into the device wholesale, bumping the device's ``data_epoch``. The
epoch bump is what the continuous layer's safe-region logic keys on — a
device whose epoch hasn't moved since its last report provably cannot
change the subscription answer.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..storage.relation import Relation

__all__ = [
    "UpdateEvent",
    "DataUpdateSchedule",
    "UpdateInjector",
    "perturb_relation",
]


def perturb_relation(
    relation: Relation, fraction: float, seed: int,
    value_step: Optional[float] = None,
) -> Relation:
    """A new relation with a seeded subset of rows re-valued.

    Sites and coordinates are preserved (updates are value-only; a
    lightweight device's sensor re-reads, it does not teleport), so the
    spatial clause of a safe region survives any number of updates.

    Args:
        relation: Source relation (unchanged).
        fraction: Fraction of rows (rounded up, so any positive fraction
            changes at least one row of a non-empty relation) that get
            fresh values.
        seed: Determinism anchor for row choice and new values.
        value_step: Optional quantization step for the fresh values
            (match the dataset generator's ``value_step`` to keep the
            value universe consistent).
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    n = relation.cardinality
    if n == 0 or fraction == 0.0:
        return relation
    rng = np.random.default_rng(seed)
    count = min(n, int(np.ceil(fraction * n)))
    rows = rng.choice(n, size=count, replace=False)
    schema = relation.schema
    values = relation.values.copy()
    lows = np.asarray(schema.lows, dtype=np.float64)
    highs = np.asarray(schema.highs, dtype=np.float64)
    fresh = rng.uniform(lows, highs, size=(count, schema.dimensions))
    if value_step is not None and value_step > 0:
        fresh = lows + np.round((fresh - lows) / value_step) * value_step
        fresh = np.clip(fresh, lows, highs)
    values[rows] = fresh
    return Relation(
        schema, relation.xy.copy(), values, relation.site_ids.copy()
    )


class UpdateEvent:
    """One scheduled data update on one device.

    Attributes:
        time: Simulation time at which the update lands.
        device: Target device id.
        fraction: Fraction of the device's rows that change.
        update_seed: Seed for :func:`perturb_relation` (drawn by
            :meth:`DataUpdateSchedule.generate`, or chosen by the test).
    """

    __slots__ = ("time", "device", "fraction", "update_seed")

    def __init__(
        self, time: float, device: int, fraction: float, update_seed: int
    ) -> None:
        if time < 0:
            raise ValueError("update time must be >= 0")
        if not 0.0 < fraction <= 1.0:
            raise ValueError("update fraction must be in (0, 1]")
        self.time = time
        self.device = device
        self.fraction = fraction
        self.update_seed = update_seed

    def signature(self) -> Tuple:
        """Hashable identity used for bit-for-bit trace comparisons."""
        return (self.time, self.device, self.fraction, self.update_seed)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"UpdateEvent(t={self.time:.3f}, device={self.device}, "
            f"fraction={self.fraction:.3f})"
        )


class DataUpdateSchedule:
    """An ordered collection of data-update events.

    Build one empty and chain :meth:`update`, or call :meth:`generate`
    for a randomized-but-deterministic schedule::

        updates = (DataUpdateSchedule()
                   .update(20.0, device=3, fraction=0.2)
                   .update(45.0, device=1, fraction=0.5))
    """

    def __init__(self, events: Sequence[UpdateEvent] = ()) -> None:
        self._events: List[UpdateEvent] = sorted(
            events, key=lambda e: (e.time, e.device)
        )

    # -- builders -----------------------------------------------------------

    def update(
        self, time: float, device: int, fraction: float,
        update_seed: Optional[int] = None,
    ) -> "DataUpdateSchedule":
        """Insert one update, keeping time order. Returns self.

        ``update_seed`` defaults to a stable function of the event's own
        coordinates, so explicitly built schedules replay bit-for-bit
        without the caller inventing seeds.
        """
        if update_seed is None:
            update_seed = (int(time * 1000) * 31 + device) & 0x7FFFFFFF
        self._events.append(UpdateEvent(time, device, fraction, update_seed))
        self._events.sort(key=lambda e: (e.time, e.device))
        return self

    # -- generation ---------------------------------------------------------

    @classmethod
    def generate(
        cls,
        node_count: int,
        sim_time: float,
        seed: int,
        updates: int,
        mean_fraction: float = 0.25,
        window: Optional[Tuple[float, float]] = None,
        protect: Sequence[int] = (),
    ) -> "DataUpdateSchedule":
        """Draw an update schedule from one seeded generator.

        Args:
            node_count: Devices in the simulation.
            sim_time: Horizon; every update lands inside ``[0, sim_time)``
                (or inside ``window`` when given).
            seed: Determinism anchor — same arguments, same schedule.
            updates: Number of update events to draw.
            mean_fraction: Mean of the exponential draw of each event's
                changed-row fraction (clamped to (0, 1]).
            window: Optional ``(start, end)`` interval constraining
                update times.
            protect: Device ids that never receive updates (e.g. an
                originator a test wants bit-stable).
        """
        if node_count <= 0:
            raise ValueError("node_count must be > 0")
        if updates < 0:
            raise ValueError("updates must be >= 0")
        lo, hi = window if window is not None else (0.0, sim_time)
        if not 0 <= lo < hi <= sim_time:
            raise ValueError("window must satisfy 0 <= start < end <= sim_time")
        rng = np.random.default_rng(seed)
        eligible = [n for n in range(node_count) if n not in set(protect)]
        if not eligible:
            raise ValueError("every device is protected; nothing to update")
        schedule = cls()
        for _ in range(updates):
            device = eligible[int(rng.integers(len(eligible)))]
            time = float(rng.uniform(lo, hi))
            fraction = min(1.0, max(1e-3, float(
                rng.exponential(mean_fraction)
            )))
            update_seed = int(rng.integers(0, 2**31 - 1))
            schedule.update(time, device, fraction, update_seed)
        return schedule

    # -- access -------------------------------------------------------------

    @property
    def events(self) -> Tuple[UpdateEvent, ...]:
        """All events in time order."""
        return tuple(self._events)

    def signature(self) -> Tuple[Tuple, ...]:
        """Bit-for-bit identity of the whole schedule."""
        return tuple(e.signature() for e in self._events)

    def updated_devices(self) -> List[int]:
        """Distinct devices updated at least once, sorted."""
        return sorted({e.device for e in self._events})

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)

    def __bool__(self) -> bool:
        return bool(self._events)


class UpdateInjector:
    """Applies a :class:`DataUpdateSchedule` to live devices.

    Each event swaps the target device's relation for a perturbed
    version via the device's ``apply_update`` hook (which also bumps its
    ``data_epoch``). Crashed devices still receive updates — the data
    lives on the device's storage, not in its volatile protocol state,
    and fail-stop crashes lose the latter only.

    Every applied event is appended to :attr:`applied`, mirroring
    :class:`~repro.faults.injector.FaultInjector`'s deterministic trace
    contract.
    """

    def __init__(self, schedule: DataUpdateSchedule,
                 value_step: Optional[float] = None) -> None:
        self.schedule = schedule
        self.value_step = value_step
        self.applied: List[Tuple] = []
        self._devices: Optional[Dict[int, object]] = None
        self._world = None

    def install(self, world, devices: Sequence) -> "UpdateInjector":
        """Schedule every update on the world's engine. Returns self."""
        if self._devices is not None:
            raise RuntimeError("injector already installed")
        self._world = world
        self._devices = {d.node_id: d for d in devices}
        for event in self.schedule:
            world.sim.schedule_at(event.time, self._apply, event)
        return self

    def _apply(self, event: UpdateEvent) -> None:
        device = self._devices.get(event.device)
        effective = device is not None
        if device is not None:
            device.apply_update(
                perturb_relation(
                    device.relation, event.fraction, event.update_seed,
                    value_step=self.value_step,
                )
            )
            if self._world.obs.enabled:
                self._world.obs.data_updated(
                    event.device, device.data_epoch, event.fraction
                )
        self.applied.append(event.signature() + (effective,))

    def applied_signature(self) -> Tuple[Tuple, ...]:
        """Bit-for-bit identity of everything applied so far."""
        return tuple(self.applied)
