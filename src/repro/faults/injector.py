"""Wiring a :class:`FaultSchedule` into a live simulation.

The injector schedules one engine event per fault transition and applies
it against the :class:`~repro.net.world.World`: crashes call
``World.fail_node`` (which fires the node's ``on_crash`` hook, losing
its in-flight query state), recoveries call ``World.restore_node``
(rejoin clean), link events toggle pairwise blackouts, and loss bursts
push/pop a loss-rate override.

Every *applied* transition is appended to :attr:`FaultInjector.applied`
— the deterministic fault trace the acceptance tests compare bit for bit
— and, when a :class:`~repro.net.trace.Tracer` is given, mirrored into
the shared trace stream as ``fault-*`` application events.

Cache coherence: each connectivity-affecting application (crash,
recovery, blackout toggle) bumps ``World.connectivity_epoch``, which
invalidates the world's epoch-cached neighbor index — fault injection
can never be served a stale ``neighbors``/``reachable_from`` answer,
no matter how queries interleave with transitions at the same
simulation time.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..net.trace import Tracer
from ..net.world import World
from .schedule import FaultEvent, FaultSchedule

__all__ = ["FaultInjector"]


class FaultInjector:
    """Applies a fault schedule to a world.

    Args:
        schedule: What to inject and when.
        tracer: Optional tracer (already installed on the target world)
            that receives ``fault-*`` events alongside the frame stream.
    """

    def __init__(
        self, schedule: FaultSchedule, tracer: Optional[Tracer] = None
    ) -> None:
        self.schedule = schedule
        self.tracer = tracer
        self.applied: List[Tuple] = []
        self._world: Optional[World] = None
        self._burst_stack: List[float] = []
        self._dup_stack: List[float] = []
        self._jitter_stack: List[float] = []

    def install(self, world: World) -> "FaultInjector":
        """Schedule every fault transition on the world's engine.
        Returns self."""
        if self._world is not None:
            raise RuntimeError("injector already installed")
        self._world = world
        for event in self.schedule:
            world.sim.schedule_at(event.time, self._apply, event)
        return self

    # -- application --------------------------------------------------------

    def _apply(self, event: FaultEvent) -> None:
        world = self._world
        effective = True
        if event.kind == "node-crash":
            if event.node in world._nodes and world.node_is_up(event.node):
                world.fail_node(event.node)
            else:
                effective = False
        elif event.kind == "node-recover":
            if event.node in world._nodes and not world.node_is_up(event.node):
                world.restore_node(event.node)
            else:
                effective = False
        elif event.kind == "link-down":
            a, b = event.link
            effective = not world.link_blacked_out(a, b)
            world.set_link_blackout(a, b, True)
        elif event.kind == "link-up":
            a, b = event.link
            effective = world.link_blacked_out(a, b)
            world.set_link_blackout(a, b, False)
        elif event.kind == "loss-burst-start":
            self._burst_stack.append(event.loss_rate)
            world.set_loss_override(event.loss_rate)
        elif event.kind == "loss-burst-end":
            if self._burst_stack:
                self._burst_stack.pop()
            world.set_loss_override(
                self._burst_stack[-1] if self._burst_stack else None
            )
        elif event.kind == "partition-split":
            effective = world.set_partition(event.axis, event.coord, True)
        elif event.kind == "partition-heal":
            effective = world.set_partition(event.axis, event.coord, False)
        elif event.kind == "dup-start":
            self._dup_stack.append(event.loss_rate)
            world.set_duplication(event.loss_rate)
        elif event.kind == "dup-end":
            if self._dup_stack:
                self._dup_stack.pop()
            world.set_duplication(
                self._dup_stack[-1] if self._dup_stack else None
            )
        elif event.kind == "jitter-start":
            self._jitter_stack.append(event.jitter)
            world.set_delay_jitter(event.jitter)
        elif event.kind == "jitter-end":
            if self._jitter_stack:
                self._jitter_stack.pop()
            world.set_delay_jitter(
                self._jitter_stack[-1] if self._jitter_stack else None
            )
        self.applied.append(event.signature() + (effective,))
        if self.tracer is not None:
            self.tracer.emit(
                f"fault-{event.kind}",
                node=event.node,
                link=event.link,
                loss_rate=event.loss_rate,
                axis=event.axis,
                coord=event.coord,
                jitter=event.jitter,
                effective=effective,
            )

    # -- inspection ---------------------------------------------------------

    def applied_signature(self) -> Tuple[Tuple, ...]:
        """Bit-for-bit identity of everything applied so far."""
        return tuple(self.applied)
