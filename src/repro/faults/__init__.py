"""Deterministic fault injection: device churn, blackouts, loss bursts —
plus the data-plane sibling, seeded data-update schedules."""

from .injector import FaultInjector
from .schedule import FAULT_KINDS, FaultEvent, FaultSchedule
from .updates import (
    DataUpdateSchedule,
    UpdateEvent,
    UpdateInjector,
    perturb_relation,
)

__all__ = [
    "FAULT_KINDS",
    "DataUpdateSchedule",
    "FaultEvent",
    "FaultInjector",
    "FaultSchedule",
    "UpdateEvent",
    "UpdateInjector",
    "perturb_relation",
]
