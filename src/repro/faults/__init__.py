"""Deterministic fault injection: device churn, blackouts, loss bursts."""

from .injector import FaultInjector
from .schedule import FAULT_KINDS, FaultEvent, FaultSchedule

__all__ = ["FAULT_KINDS", "FaultEvent", "FaultInjector", "FaultSchedule"]
