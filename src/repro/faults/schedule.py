"""Deterministic fault schedules: device churn, link blackouts, loss bursts.

A :class:`FaultSchedule` is an immutable, time-ordered list of
:class:`FaultEvent` entries, built either explicitly (tests pin exact
times) or by :meth:`FaultSchedule.generate`, which draws every event
from one seeded generator — identical seeds produce bit-for-bit
identical schedules, so any run under faults replays exactly.

The schedule is pure data; wiring it into a live simulation is the
:class:`~repro.faults.injector.FaultInjector`'s job.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["FaultEvent", "FaultSchedule", "FAULT_KINDS"]

#: Recognised event kinds. Order matters: it is the same-time sort
#: tiebreak, so new kinds are appended, never inserted.
FAULT_KINDS = (
    "node-crash",
    "node-recover",
    "link-down",
    "link-up",
    "loss-burst-start",
    "loss-burst-end",
    "partition-split",
    "partition-heal",
    "dup-start",
    "dup-end",
    "jitter-start",
    "jitter-end",
)


@dataclass(frozen=True, order=True)
class FaultEvent:
    """One scheduled fault transition.

    Attributes:
        time: Simulation time at which the transition applies.
        kind: One of :data:`FAULT_KINDS`.
        node: Target node for crash/recover events.
        link: Target ``(a, b)`` pair for link events (stored sorted).
        loss_rate: Probability payload: the override rate for
            ``loss-burst-start`` and the duplication probability for
            ``dup-start``.
        axis: Cut axis (``x`` or ``y``) for partition events.
        coord: Cut coordinate for partition events.
        jitter: Max extra per-hop delay for ``jitter-start`` events.
    """

    time: float
    kind: str
    node: Optional[int] = None
    link: Optional[Tuple[int, int]] = None
    loss_rate: Optional[float] = None
    axis: Optional[str] = None
    coord: Optional[float] = None
    jitter: Optional[float] = None

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("fault time must be >= 0")
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; choose from {FAULT_KINDS}"
            )
        if self.kind in ("node-crash", "node-recover") and self.node is None:
            raise ValueError(f"{self.kind} needs a node")
        if self.kind in ("link-down", "link-up"):
            if self.link is None or self.link[0] == self.link[1]:
                raise ValueError(f"{self.kind} needs a link of two distinct nodes")
            if self.link[0] > self.link[1]:
                object.__setattr__(
                    self, "link", (self.link[1], self.link[0])
                )
        if self.kind == "loss-burst-start":
            if self.loss_rate is None or not 0.0 <= self.loss_rate <= 1.0:
                raise ValueError("loss-burst-start needs loss_rate in [0, 1]")
        if self.kind == "dup-start":
            if self.loss_rate is None or not 0.0 <= self.loss_rate <= 1.0:
                raise ValueError(
                    "dup-start needs a duplication rate in [0, 1] "
                    "(carried in loss_rate)"
                )
        if self.kind in ("partition-split", "partition-heal"):
            if self.axis not in ("x", "y") or self.coord is None:
                raise ValueError(f"{self.kind} needs axis ('x'/'y') and coord")
        if self.kind == "jitter-start":
            if self.jitter is None or self.jitter <= 0:
                raise ValueError("jitter-start needs jitter > 0")

    def signature(self) -> Tuple:
        """Hashable identity used for bit-for-bit trace comparisons."""
        return (self.time, self.kind, self.node, self.link, self.loss_rate,
                self.axis, self.coord, self.jitter)


class FaultSchedule:
    """An ordered collection of fault events.

    Build one empty and chain the builder methods, or call
    :meth:`generate` for a randomized-but-deterministic schedule::

        faults = (FaultSchedule()
                  .crash(10.0, node=3, downtime=30.0)
                  .link_blackout(5.0, 0, 1, duration=20.0)
                  .loss_burst(40.0, rate=0.8, duration=15.0))
    """

    def __init__(self, events: Sequence[FaultEvent] = ()) -> None:
        self._events: List[FaultEvent] = sorted(
            events, key=lambda e: (e.time, FAULT_KINDS.index(e.kind))
        )

    # -- builders -----------------------------------------------------------

    def add(self, event: FaultEvent) -> "FaultSchedule":
        """Insert one event, keeping time order. Returns self."""
        self._events.append(event)
        self._events.sort(key=lambda e: (e.time, FAULT_KINDS.index(e.kind)))
        return self

    def crash(
        self, time: float, node: int, downtime: Optional[float] = None
    ) -> "FaultSchedule":
        """Crash ``node`` at ``time``; recover after ``downtime`` seconds
        (never, if None). Returns self."""
        self.add(FaultEvent(time=time, kind="node-crash", node=node))
        if downtime is not None:
            if downtime <= 0:
                raise ValueError("downtime must be > 0")
            self.add(
                FaultEvent(time=time + downtime, kind="node-recover", node=node)
            )
        return self

    def link_blackout(
        self, time: float, a: int, b: int, duration: Optional[float] = None
    ) -> "FaultSchedule":
        """Force the ``a``–``b`` link down at ``time`` for ``duration``
        seconds (forever, if None). Returns self."""
        self.add(FaultEvent(time=time, kind="link-down", link=(a, b)))
        if duration is not None:
            if duration <= 0:
                raise ValueError("duration must be > 0")
            self.add(
                FaultEvent(time=time + duration, kind="link-up", link=(a, b))
            )
        return self

    def loss_burst(
        self, time: float, rate: float, duration: float
    ) -> "FaultSchedule":
        """Raise the world loss rate to ``rate`` during
        ``[time, time + duration)``. Returns self."""
        if duration <= 0:
            raise ValueError("duration must be > 0")
        self.add(
            FaultEvent(time=time, kind="loss-burst-start", loss_rate=rate)
        )
        self.add(FaultEvent(time=time + duration, kind="loss-burst-end"))
        return self

    def partition(
        self, time: float, axis: str, coord: float,
        duration: Optional[float] = None,
    ) -> "FaultSchedule":
        """Split the world along ``axis = coord`` at ``time``; heal after
        ``duration`` seconds (never, if None). Returns self."""
        self.add(
            FaultEvent(time=time, kind="partition-split", axis=axis,
                       coord=coord)
        )
        if duration is not None:
            if duration <= 0:
                raise ValueError("duration must be > 0")
            self.add(
                FaultEvent(time=time + duration, kind="partition-heal",
                           axis=axis, coord=coord)
            )
        return self

    def duplication(
        self, time: float, rate: float, duration: float
    ) -> "FaultSchedule":
        """Duplicate delivered frames with probability ``rate`` during
        ``[time, time + duration)``. Returns self."""
        if duration <= 0:
            raise ValueError("duration must be > 0")
        self.add(FaultEvent(time=time, kind="dup-start", loss_rate=rate))
        self.add(FaultEvent(time=time + duration, kind="dup-end"))
        return self

    def delay_jitter(
        self, time: float, max_delay: float, duration: float
    ) -> "FaultSchedule":
        """Add uniform ``[0, max_delay]`` extra per-hop delay during
        ``[time, time + duration)``. Returns self."""
        if duration <= 0:
            raise ValueError("duration must be > 0")
        self.add(FaultEvent(time=time, kind="jitter-start", jitter=max_delay))
        self.add(FaultEvent(time=time + duration, kind="jitter-end"))
        return self

    # -- generation ---------------------------------------------------------

    @classmethod
    def generate(
        cls,
        node_count: int,
        sim_time: float,
        seed: int,
        crash_fraction: float = 0.0,
        mean_downtime: float = 60.0,
        window: Optional[Tuple[float, float]] = None,
        link_blackouts: int = 0,
        mean_blackout: float = 30.0,
        loss_bursts: int = 0,
        burst_rate: float = 0.8,
        mean_burst: float = 20.0,
        protect: Sequence[int] = (),
        partitions: int = 0,
        mean_partition: float = 40.0,
        extent: Tuple[float, float] = (1000.0, 1000.0),
        dup_windows: int = 0,
        dup_rate: float = 0.3,
        mean_dup: float = 20.0,
        jitter_windows: int = 0,
        jitter_max: float = 0.25,
        mean_jitter: float = 20.0,
    ) -> "FaultSchedule":
        """Draw a churn schedule from one seeded generator.

        Args:
            node_count: Nodes the simulation will run.
            sim_time: Horizon; every fault starts inside ``[0, sim_time)``
                (or inside ``window`` when given).
            seed: Determinism anchor — same arguments, same schedule.
            crash_fraction: Fraction of nodes (rounded down) that crash
                once each at a uniform time in the window.
            mean_downtime: Mean of the exponential downtime draw; a node
                whose downtime would outlive ``sim_time`` simply never
                recovers.
            window: Optional ``(start, end)`` interval constraining fault
                start times (defaults to the whole run).
            link_blackouts: Number of random pairwise blackouts.
            mean_blackout: Mean exponential blackout duration.
            loss_bursts: Number of bursty-loss windows.
            burst_rate: Loss rate inside each burst.
            mean_burst: Mean exponential burst duration.
            protect: Node ids that never crash (e.g. query originators a
                test needs alive).
            partitions: Number of region-split windows (random axis, cut
                in the middle half of ``extent``).
            mean_partition: Mean exponential partition duration; a split
                outliving ``sim_time`` never heals.
            extent: ``(width, height)`` of the deployment area the cut
                coordinate is drawn from.
            dup_windows: Number of message-duplication windows.
            dup_rate: Duplication probability inside each window.
            mean_dup: Mean exponential duplication-window duration.
            jitter_windows: Number of delay-jitter windows.
            jitter_max: Max extra per-hop delay inside each window.
            mean_jitter: Mean exponential jitter-window duration.

        Determinism note: the new fault families draw *after* the
        original crash/blackout/burst draws, so schedules generated with
        only the original arguments are bit-identical to those from
        before partitions/duplication/jitter existed.
        """
        if node_count <= 0:
            raise ValueError("node_count must be > 0")
        if not 0.0 <= crash_fraction <= 1.0:
            raise ValueError("crash_fraction must be in [0, 1]")
        lo, hi = window if window is not None else (0.0, sim_time)
        if not 0 <= lo < hi <= sim_time:
            raise ValueError("window must satisfy 0 <= start < end <= sim_time")
        rng = np.random.default_rng(seed)
        schedule = cls()
        crashable = [n for n in range(node_count) if n not in set(protect)]
        n_crashes = min(int(crash_fraction * node_count), len(crashable))
        if n_crashes:
            victims = rng.choice(len(crashable), size=n_crashes, replace=False)
            for index in sorted(int(v) for v in victims):
                node = crashable[index]
                start = float(rng.uniform(lo, hi))
                downtime = float(rng.exponential(mean_downtime))
                if start + downtime >= sim_time:
                    schedule.crash(start, node)
                else:
                    schedule.crash(start, node, downtime=downtime)
        for _ in range(link_blackouts):
            a, b = rng.choice(node_count, size=2, replace=False)
            start = float(rng.uniform(lo, hi))
            duration = float(rng.exponential(mean_blackout))
            schedule.link_blackout(
                start, int(a), int(b),
                duration=duration if start + duration < sim_time else None,
            )
        for _ in range(loss_bursts):
            start = float(rng.uniform(lo, hi))
            duration = float(rng.exponential(mean_burst))
            schedule.loss_burst(
                start, burst_rate, duration=max(duration, 1e-3)
            )
        for _ in range(partitions):
            axis = "x" if rng.random() < 0.5 else "y"
            span = extent[0] if axis == "x" else extent[1]
            coord = float(rng.uniform(0.25, 0.75)) * span
            start = float(rng.uniform(lo, hi))
            duration = float(rng.exponential(mean_partition))
            schedule.partition(
                start, axis, coord,
                duration=duration if start + duration < sim_time else None,
            )
        for _ in range(dup_windows):
            start = float(rng.uniform(lo, hi))
            duration = float(rng.exponential(mean_dup))
            schedule.duplication(
                start, dup_rate, duration=max(duration, 1e-3)
            )
        for _ in range(jitter_windows):
            start = float(rng.uniform(lo, hi))
            duration = float(rng.exponential(mean_jitter))
            schedule.delay_jitter(
                start, jitter_max, duration=max(duration, 1e-3)
            )
        return schedule

    # -- access -------------------------------------------------------------

    @property
    def events(self) -> Tuple[FaultEvent, ...]:
        """All events in time order."""
        return tuple(self._events)

    def signature(self) -> Tuple[Tuple, ...]:
        """Bit-for-bit identity of the whole schedule."""
        return tuple(e.signature() for e in self._events)

    def crashed_nodes(self) -> List[int]:
        """Distinct nodes that crash at least once, sorted."""
        return sorted(
            {e.node for e in self._events if e.kind == "node-crash"}
        )

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)

    def __bool__(self) -> bool:
        return bool(self._events)
