"""Synthetic data substrate: generators, spatial layout, partitioning."""

from .generators import (
    DISTRIBUTIONS,
    anticorrelated,
    correlated,
    generate,
    independent,
    quantize,
    scale_to_domain,
)
from .partition import GlobalDataset, GridPartition, make_global_dataset
from .spatial import (
    mindist_point_rect,
    point_in_rect,
    rect_overlaps_circle,
    uniform_positions,
)
from .workload import QueryRequest, generate_workload, single_query_workload

__all__ = [
    "DISTRIBUTIONS",
    "GlobalDataset",
    "GridPartition",
    "QueryRequest",
    "anticorrelated",
    "correlated",
    "generate",
    "generate_workload",
    "independent",
    "make_global_dataset",
    "mindist_point_rect",
    "point_in_rect",
    "quantize",
    "rect_overlaps_circle",
    "scale_to_domain",
    "single_query_workload",
    "uniform_positions",
]
