"""Synthetic attribute generators (Börzsönyi et al., ICDE 2001 families).

The paper evaluates on synthetic datasets "with both independent and
anti-correlated distributed attributes" (Section 5.1); a correlated
generator is included for completeness. All generators produce values in
``[0, 1]^n``; use :func:`scale_to_domain` to map them onto a schema's
attribute domains (e.g. integers in ``[1, 1000]`` for the simulation, the
``{0.0, 0.1, ..., 9.9}`` grid for the device experiments).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..storage.schema import RelationSchema

__all__ = [
    "independent",
    "correlated",
    "anticorrelated",
    "generate",
    "scale_to_domain",
    "quantize",
    "DISTRIBUTIONS",
]

DISTRIBUTIONS = ("independent", "correlated", "anticorrelated")


def independent(
    n: int, dimensions: int, rng: Optional[np.random.Generator] = None
) -> np.ndarray:
    """``n`` points with i.i.d. uniform attributes in ``[0, 1]``."""
    rng = _rng(rng)
    _check(n, dimensions)
    return rng.random((n, dimensions))


def correlated(
    n: int,
    dimensions: int,
    rng: Optional[np.random.Generator] = None,
    spread: float = 0.05,
) -> np.ndarray:
    """``n`` correlated points: all attributes cluster around a shared
    per-point level drawn from a normal peaked at 0.5.

    Points good in one dimension tend to be good in all — skylines are
    tiny.
    """
    rng = _rng(rng)
    _check(n, dimensions)
    level = _truncated_normal(rng, n, loc=0.5, scale=0.25)
    noise = rng.normal(0.0, spread, size=(n, dimensions))
    points = level[:, None] + noise
    return _reflect_into_unit(points)


def anticorrelated(
    n: int,
    dimensions: int,
    rng: Optional[np.random.Generator] = None,
    transfer_rounds: int = 8,
    level_scale: float = 0.05,
) -> np.ndarray:
    """``n`` anti-correlated points via the classic pairwise-transfer scheme.

    Each point starts with every attribute equal to a per-point level
    ``v ~ N(0.5, level_scale)`` — a *tight* distribution, so the attribute
    sum is concentrated around the anti-diagonal plane — then value mass
    is repeatedly shifted between random attribute pairs while preserving
    the sum. Points good in one dimension are bad in another (pairwise
    correlation ~ -0.95 in 2-D, ~ -1/(d-1) in higher dimensions) —
    skylines are large, the hard case for filtering (Section 5.2.2).
    """
    rng = _rng(rng)
    _check(n, dimensions)
    level = _truncated_normal(rng, n, loc=0.5, scale=level_scale)
    points = np.repeat(level[:, None], dimensions, axis=1)
    if dimensions == 1:
        return points
    for _ in range(transfer_rounds * (dimensions - 1)):
        i = rng.integers(0, dimensions, size=n)
        j = rng.integers(0, dimensions, size=n)
        same = i == j
        j = np.where(same, (j + 1) % dimensions, j)
        give = points[np.arange(n), i]
        room = 1.0 - points[np.arange(n), j]
        delta = rng.random(n) * np.minimum(give, room)
        points[np.arange(n), i] -= delta
        points[np.arange(n), j] += delta
    return np.clip(points, 0.0, 1.0)


def generate(
    distribution: str,
    n: int,
    dimensions: int,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Dispatch on distribution name (``independent`` / ``correlated`` /
    ``anticorrelated``; ``in`` / ``co`` / ``ac`` shorthands accepted)."""
    aliases = {
        "in": "independent",
        "ind": "independent",
        "co": "correlated",
        "corr": "correlated",
        "ac": "anticorrelated",
        "anti": "anticorrelated",
        "anti-correlated": "anticorrelated",
    }
    name = aliases.get(distribution.lower(), distribution.lower())
    if name == "independent":
        return independent(n, dimensions, rng)
    if name == "correlated":
        return correlated(n, dimensions, rng)
    if name == "anticorrelated":
        return anticorrelated(n, dimensions, rng)
    raise ValueError(
        f"unknown distribution {distribution!r}; choose from {DISTRIBUTIONS}"
    )


def scale_to_domain(unit_values: np.ndarray, schema: RelationSchema) -> np.ndarray:
    """Map ``[0, 1]^n`` values onto the schema's per-attribute domains."""
    unit_values = np.asarray(unit_values, dtype=np.float64)
    if unit_values.ndim != 2 or unit_values.shape[1] != schema.dimensions:
        raise ValueError(
            f"expected (N, {schema.dimensions}) unit values, got {unit_values.shape}"
        )
    lows = np.asarray(schema.lows)
    highs = np.asarray(schema.highs)
    return lows[None, :] + unit_values * (highs - lows)[None, :]


def quantize(values: np.ndarray, step: float) -> np.ndarray:
    """Snap values to a grid of spacing ``step``.

    The device experiments use the domain ``{0.0, 0.1, ..., 9.9}``
    (Section 5.1, 100 distinct values → byte IDs); the simulation uses
    integers in ``[1, 1000]`` (``step=1``).
    """
    if step <= 0:
        raise ValueError("step must be positive")
    return np.round(np.asarray(values, dtype=np.float64) / step) * step


def _rng(rng: Optional[np.random.Generator]) -> np.random.Generator:
    return rng if rng is not None else np.random.default_rng()


def _check(n: int, dimensions: int) -> None:
    if n < 0:
        raise ValueError("n must be >= 0")
    if dimensions < 1:
        raise ValueError("dimensions must be >= 1")


def _truncated_normal(
    rng: np.random.Generator, n: int, loc: float, scale: float
) -> np.ndarray:
    """Normal samples redrawn until they land in ``[0, 1]``."""
    out = rng.normal(loc, scale, size=n)
    for _ in range(64):
        bad = (out < 0.0) | (out > 1.0)
        if not bad.any():
            break
        out[bad] = rng.normal(loc, scale, size=int(bad.sum()))
    return np.clip(out, 0.0, 1.0)


def _reflect_into_unit(points: np.ndarray) -> np.ndarray:
    """Reflect out-of-range values back into ``[0, 1]`` (keeps density
    smooth near the borders, unlike clipping)."""
    points = np.abs(points)
    points = np.where(points > 1.0, 2.0 - points, points)
    return np.clip(points, 0.0, 1.0)
