"""Query workload generation for the simulation experiments.

"Every mobile device issues 1 to 5 queries at random times during the
simulation. Queries of different devices can coexist, while a single
device does not issue a new query if it has one in progress"
(Section 5.2.1). The workload generator schedules *intended* issue times;
the coordinator enforces the one-in-progress rule at run time by delaying
or dropping overlapping requests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

__all__ = ["QueryRequest", "generate_workload", "single_query_workload"]


@dataclass(frozen=True)
class QueryRequest:
    """An intended query issue: device, time, and distance of interest."""

    device: int
    time: float
    distance: float

    def __post_init__(self) -> None:
        if self.device < 0:
            raise ValueError("device index must be >= 0")
        if self.time < 0:
            raise ValueError("issue time must be >= 0")
        if self.distance <= 0:
            raise ValueError("query distance must be > 0")


def generate_workload(
    devices: int,
    sim_time: float,
    distance: float,
    queries_per_device: Tuple[int, int] = (1, 5),
    seed: Optional[int] = None,
) -> List[QueryRequest]:
    """Schedule 1-5 queries per device at uniform random times.

    Args:
        devices: Number of devices ``m``.
        sim_time: Total simulated duration (the paper uses 2 h = 7200 s).
        distance: Distance of interest ``d`` used by every query in the
            run (the paper sweeps ``d`` across runs, not within one).
        queries_per_device: Inclusive ``(min, max)`` per-device counts.
        seed: RNG seed.

    Returns:
        Requests sorted by issue time.
    """
    if devices < 1:
        raise ValueError("need at least one device")
    if sim_time <= 0:
        raise ValueError("sim_time must be > 0")
    lo, hi = queries_per_device
    if not 0 <= lo <= hi:
        raise ValueError(f"bad queries_per_device range {queries_per_device}")
    rng = np.random.default_rng(seed)
    requests: List[QueryRequest] = []
    for device in range(devices):
        count = int(rng.integers(lo, hi + 1))
        times = np.sort(rng.uniform(0.0, sim_time, size=count))
        for t in times:
            requests.append(
                QueryRequest(device=device, time=float(t), distance=distance)
            )
    requests.sort(key=lambda r: (r.time, r.device))
    return requests


def single_query_workload(
    originator: int, distance: float, time: float = 0.0
) -> List[QueryRequest]:
    """A workload with exactly one query — used by focused tests."""
    return [QueryRequest(device=originator, time=time, distance=distance)]
