"""Spatial placement of sites and distance utilities.

The paper distributes all tuples "randomly within a 1000 x 1000 spatial
domain" (Section 5.2.1). Sites must have pairwise-distinct locations
because duplicate elimination keys on ``(x, y)`` (Section 4.3); the
generator enforces this.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

__all__ = [
    "uniform_positions",
    "mindist_point_rect",
    "point_in_rect",
    "rect_overlaps_circle",
]


def uniform_positions(
    n: int,
    extent: Tuple[float, float, float, float],
    rng: Optional[np.random.Generator] = None,
    ensure_distinct: bool = True,
) -> np.ndarray:
    """``(n, 2)`` uniform random positions within ``extent``.

    Args:
        n: Number of positions.
        extent: ``(x_min, y_min, x_max, y_max)``.
        rng: Numpy generator (defaults to a fresh one).
        ensure_distinct: Re-draw colliding positions so every site has a
            unique location.
    """
    if n < 0:
        raise ValueError("n must be >= 0")
    x_min, y_min, x_max, y_max = extent
    if not (x_min < x_max and y_min < y_max):
        raise ValueError(f"degenerate extent {extent}")
    rng = rng if rng is not None else np.random.default_rng()
    pts = np.column_stack(
        [
            rng.uniform(x_min, x_max, size=n),
            rng.uniform(y_min, y_max, size=n),
        ]
    )
    if ensure_distinct and n > 1:
        for _ in range(32):
            _, first = np.unique(pts, axis=0, return_index=True)
            dup_mask = np.ones(n, dtype=bool)
            dup_mask[first] = False
            count = int(dup_mask.sum())
            if count == 0:
                break
            pts[dup_mask] = np.column_stack(
                [
                    rng.uniform(x_min, x_max, size=count),
                    rng.uniform(y_min, y_max, size=count),
                ]
            )
    return pts


def mindist_point_rect(
    pos: Tuple[float, float], rect: Tuple[float, float, float, float]
) -> float:
    """Minimum Euclidean distance from ``pos`` to rectangle ``rect``.

    This is the ``mindist(pos_org, MBR_i)`` test in the local skyline
    algorithm (Figure 4): a device whose data MBR is farther than ``d``
    from the query position can skip processing entirely.
    """
    x, y = pos
    x_min, y_min, x_max, y_max = rect
    dx = max(x_min - x, 0.0, x - x_max)
    dy = max(y_min - y, 0.0, y - y_max)
    return math.hypot(dx, dy)


def point_in_rect(
    pos: Tuple[float, float], rect: Tuple[float, float, float, float]
) -> bool:
    """True iff ``pos`` lies inside (or on the border of) ``rect``."""
    x, y = pos
    x_min, y_min, x_max, y_max = rect
    return x_min <= x <= x_max and y_min <= y <= y_max


def rect_overlaps_circle(
    rect: Tuple[float, float, float, float],
    center: Tuple[float, float],
    radius: float,
) -> bool:
    """True iff ``rect`` intersects the disk of ``radius`` around
    ``center`` — the query-region overlap test."""
    return mindist_point_rect(center, rect) <= radius
