"""Grid partitioning of the global relation across mobile devices.

"Based on a uniform grid on the spatial domain, a global relation R is
divided into local relations (the R_i s), each containing all the tuples
within its corresponding grid cell" (Section 5.2.1). Each of the ``m``
devices holds one cell; ``m`` is a perfect square (9, 16, ..., 100).

Local relations *may* overlap in general (Section 2); the optional
``replication`` knob copies a fraction of tuples into a neighbouring
cell's relation to exercise duplicate elimination.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..storage.relation import Relation
from ..storage.schema import RelationSchema
from . import generators
from .spatial import uniform_positions

__all__ = ["GridPartition", "GlobalDataset", "make_global_dataset"]


@dataclass(frozen=True)
class GridPartition:
    """A uniform ``k x k`` grid over a spatial extent.

    Cells are numbered row-major: cell ``(row, col)`` has index
    ``row * k + col``.
    """

    k: int
    extent: Tuple[float, float, float, float]

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError("grid side k must be >= 1")
        x_min, y_min, x_max, y_max = self.extent
        if not (x_min < x_max and y_min < y_max):
            raise ValueError(f"degenerate extent {self.extent}")

    @property
    def cells(self) -> int:
        """Total number of cells ``m = k * k``."""
        return self.k * self.k

    @property
    def cell_width(self) -> float:
        """Width of one cell."""
        return (self.extent[2] - self.extent[0]) / self.k

    @property
    def cell_height(self) -> float:
        """Height of one cell."""
        return (self.extent[3] - self.extent[1]) / self.k

    def cell_of(self, x: float, y: float) -> int:
        """Index of the cell containing ``(x, y)`` (borders go low)."""
        x_min, y_min, x_max, y_max = self.extent
        if not (x_min <= x <= x_max and y_min <= y <= y_max):
            raise ValueError(f"position ({x}, {y}) outside extent {self.extent}")
        col = min(int((x - x_min) / self.cell_width), self.k - 1)
        row = min(int((y - y_min) / self.cell_height), self.k - 1)
        return row * self.k + col

    def cell_rect(self, index: int) -> Tuple[float, float, float, float]:
        """``(x_min, y_min, x_max, y_max)`` of cell ``index``."""
        row, col = divmod(self._check_index(index), self.k)
        x_min = self.extent[0] + col * self.cell_width
        y_min = self.extent[1] + row * self.cell_height
        return (x_min, y_min, x_min + self.cell_width, y_min + self.cell_height)

    def cell_center(self, index: int) -> Tuple[float, float]:
        """Center point of cell ``index``."""
        x_min, y_min, x_max, y_max = self.cell_rect(index)
        return ((x_min + x_max) / 2.0, (y_min + y_max) / 2.0)

    def neighbors(self, index: int) -> List[int]:
        """4-neighbourhood (N/S/E/W) cell indices of cell ``index``.

        This adjacency is what the static pre-tests forward queries
        along ("queries are forwarded recursively from the originator to
        the outer neighbors in the grid", Section 5.2.2-I).
        """
        row, col = divmod(self._check_index(index), self.k)
        out = []
        for dr, dc in ((-1, 0), (1, 0), (0, -1), (0, 1)):
            r, c = row + dr, col + dc
            if 0 <= r < self.k and 0 <= c < self.k:
                out.append(r * self.k + c)
        return out

    def assign(self, xy: np.ndarray) -> np.ndarray:
        """Vectorised cell assignment for an ``(N, 2)`` position array."""
        xy = np.asarray(xy, dtype=np.float64)
        col = np.minimum(
            ((xy[:, 0] - self.extent[0]) / self.cell_width).astype(np.int64),
            self.k - 1,
        )
        row = np.minimum(
            ((xy[:, 1] - self.extent[1]) / self.cell_height).astype(np.int64),
            self.k - 1,
        )
        return row * self.k + col

    def _check_index(self, index: int) -> int:
        if not 0 <= index < self.cells:
            raise IndexError(f"cell index {index} outside 0..{self.cells - 1}")
        return index


@dataclass(frozen=True)
class GlobalDataset:
    """A partitioned global relation.

    Attributes:
        schema: Shared relation schema.
        global_relation: The virtual global relation ``R`` (union of all
            locals, before replication).
        locals: One local relation ``R_i`` per device/grid cell.
        grid: The partitioning grid.
    """

    schema: RelationSchema
    global_relation: Relation
    locals: Tuple[Relation, ...]
    grid: GridPartition

    @property
    def devices(self) -> int:
        """Number of devices ``m``."""
        return len(self.locals)

    def local(self, index: int) -> Relation:
        """Local relation of device ``index``."""
        return self.locals[index]


def make_global_dataset(
    cardinality: int,
    dimensions: int,
    devices: int,
    distribution: str = "independent",
    schema: Optional[RelationSchema] = None,
    seed: Optional[int] = None,
    value_step: Optional[float] = None,
    replication: float = 0.0,
) -> GlobalDataset:
    """Generate and grid-partition a global relation, paper style.

    Args:
        cardinality: Global relation size ``|R|``.
        dimensions: Number of non-spatial attributes ``n``.
        devices: Number of devices ``m``; must be a perfect square.
        distribution: ``independent`` / ``correlated`` / ``anticorrelated``.
        schema: Relation schema; defaults to ``n`` MIN attributes over
            ``[0, 1000]`` and a ``1000 x 1000`` spatial extent (Table 6).
        seed: RNG seed for reproducibility.
        value_step: If given, quantize attribute values to this grid
            spacing (1.0 reproduces the simulation's integer attributes,
            0.1 the device experiments' ``{0.0..9.9}`` domain).
        replication: Fraction of tuples copied to a random neighbouring
            cell (creates overlapping ``R_i`` s; 0 = disjoint, the
            experimental default).

    Returns:
        A :class:`GlobalDataset` with consistent global site ids across
        local relations (replicated tuples share the original's id).
    """
    if cardinality < 0:
        raise ValueError("cardinality must be >= 0")
    k = math.isqrt(devices)
    if k * k != devices or devices < 1:
        raise ValueError(f"devices must be a positive perfect square, got {devices}")
    if not 0.0 <= replication <= 1.0:
        raise ValueError("replication must be in [0, 1]")
    if schema is None:
        from ..storage.schema import uniform_schema

        schema = uniform_schema(dimensions, low=0.0, high=1000.0)
    elif schema.dimensions != dimensions:
        raise ValueError(
            f"schema has {schema.dimensions} attributes, expected {dimensions}"
        )
    rng = np.random.default_rng(seed)
    unit = generators.generate(distribution, cardinality, dimensions, rng)
    values = generators.scale_to_domain(unit, schema)
    if value_step is not None:
        values = generators.quantize(values, value_step)
        values = np.clip(values, schema.lows, schema.highs)
    xy = uniform_positions(cardinality, schema.spatial_extent, rng)
    global_relation = Relation(schema, xy, values)

    grid = GridPartition(k=k, extent=schema.spatial_extent)
    cell_of = grid.assign(xy)
    per_cell: Dict[int, List[int]] = {c: [] for c in range(grid.cells)}
    for row_idx, cell in enumerate(cell_of):
        per_cell[int(cell)].append(row_idx)

    if replication > 0.0 and cardinality > 0:
        n_rep = int(round(replication * cardinality))
        chosen = rng.choice(cardinality, size=min(n_rep, cardinality), replace=False)
        for row_idx in chosen:
            home = int(cell_of[row_idx])
            options = grid.neighbors(home)
            if options:
                target = int(options[rng.integers(0, len(options))])
                per_cell[target].append(int(row_idx))

    locals_: List[Relation] = []
    for cell in range(grid.cells):
        idx = np.asarray(sorted(per_cell[cell]), dtype=np.int64)
        if idx.size:
            locals_.append(
                Relation(
                    schema,
                    global_relation.xy[idx],
                    global_relation.values[idx],
                    global_relation.site_ids[idx],
                )
            )
        else:
            locals_.append(Relation.empty(schema))
    return GlobalDataset(
        schema=schema,
        global_relation=global_relation,
        locals=tuple(locals_),
        grid=grid,
    )
