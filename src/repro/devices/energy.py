"""Energy accounting for mobile devices.

The paper motivates its optimizations partly by energy constraints
("processing and energy saving techniques", Section 2) without reporting
energy numbers; this module provides the standard first-order radio/CPU
energy model so the library can report the energy side of the
communication-vs-computation trade-off the protocols make.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["EnergyModel", "EnergyMeter"]


@dataclass(frozen=True)
class EnergyModel:
    """First-order energy parameters (802.11-class radio, ARM CPU).

    Attributes:
        tx_per_byte: Joules to transmit one byte.
        rx_per_byte: Joules to receive one byte.
        cpu_per_second: Joules per second of active computation.
        idle_per_second: Joules per second spent idle (radio listening).
    """

    tx_per_byte: float = 1.2e-6
    rx_per_byte: float = 0.8e-6
    cpu_per_second: float = 0.9
    idle_per_second: float = 0.05

    def __post_init__(self) -> None:
        for name in ("tx_per_byte", "rx_per_byte", "cpu_per_second",
                     "idle_per_second"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")


@dataclass
class EnergyMeter:
    """Accumulates a single device's energy expenditure."""

    model: EnergyModel = field(default_factory=EnergyModel)
    tx_bytes: int = 0
    rx_bytes: int = 0
    cpu_seconds: float = 0.0
    idle_seconds: float = 0.0

    def on_transmit(self, size_bytes: int) -> None:
        """Record a frame transmission."""
        if size_bytes < 0:
            raise ValueError("size_bytes must be >= 0")
        self.tx_bytes += size_bytes

    def on_receive(self, size_bytes: int) -> None:
        """Record a frame reception."""
        if size_bytes < 0:
            raise ValueError("size_bytes must be >= 0")
        self.rx_bytes += size_bytes

    def on_compute(self, seconds: float) -> None:
        """Record active CPU time."""
        if seconds < 0:
            raise ValueError("seconds must be >= 0")
        self.cpu_seconds += seconds

    def on_idle(self, seconds: float) -> None:
        """Record idle/listening time."""
        if seconds < 0:
            raise ValueError("seconds must be >= 0")
        self.idle_seconds += seconds

    @property
    def joules(self) -> float:
        """Total energy spent so far."""
        return (
            self.tx_bytes * self.model.tx_per_byte
            + self.rx_bytes * self.model.rx_per_byte
            + self.cpu_seconds * self.model.cpu_per_second
            + self.idle_seconds * self.model.idle_per_second
        )
