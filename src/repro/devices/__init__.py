"""Device substrate: calibrated PDA cost model and energy accounting."""

from .cost_model import (
    PDA_2006,
    DeviceCostModel,
    calibrate,
    calibrate_from_wall_time,
    estimate_comparisons,
)
from .energy import EnergyMeter, EnergyModel

__all__ = [
    "PDA_2006",
    "DeviceCostModel",
    "EnergyMeter",
    "EnergyModel",
    "calibrate",
    "calibrate_from_wall_time",
    "estimate_comparisons",
]
