"""Calibrated cost model of a lightweight mobile device.

The paper measured local skyline processing on an HP iPAQ h6365
(200 MHz TI OMAP1510, 64 MB) running SuperWaba (Section 5.1), then
*estimated* those local costs inside the MANET simulation and added them
to the simulated communication delays to obtain total response time
(Section 5.2.3). We replicate that methodology: this module converts
operation counts (or analytic estimates of them) into simulated seconds
on such a device.

Per-operation costs are order-of-magnitude figures for an interpreted
runtime on a 200 MHz ARM-class CPU (a SuperWaba-style VM executes a few
million simple bytecodes per second, putting one tuple fetch or float
comparison in the microseconds); Figure 5 only requires *relative*
behaviour (byte-ID comparisons cheaper than float comparisons, hybrid
cheaper than flat), which holds for any constants with
``id_compare < value_compare``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.dominance import ComparisonCounter
from ..core.local import LocalSkylineResult

__all__ = ["DeviceCostModel", "PDA_2006", "estimate_comparisons"]


@dataclass(frozen=True)
class DeviceCostModel:
    """Per-operation costs in seconds on the modelled device.

    Attributes:
        id_compare: One small-integer ID comparison.
        value_compare: One raw (float) value comparison.
        distance_check: One Euclidean range check (two multiplies + add).
        tuple_fetch: Fetching one tuple for the scan.
        indirection: One pointer dereference (domain/ring storage).
    """

    id_compare: float = 3.0e-6
    value_compare: float = 12.0e-6
    distance_check: float = 8.0e-6
    tuple_fetch: float = 6.0e-6
    indirection: float = 10.0e-6

    def __post_init__(self) -> None:
        for name in ("id_compare", "value_compare", "distance_check",
                     "tuple_fetch", "indirection"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")

    def time_for_counter(
        self, counter: ComparisonCounter, scanned: int = 0, indirections: int = 0
    ) -> float:
        """Seconds for an *actual* operation count (faithful paths)."""
        return (
            counter.id_comparisons * self.id_compare
            + counter.value_comparisons * self.value_compare
            + counter.distance_checks * self.distance_check
            + scanned * self.tuple_fetch
            + indirections * self.indirection
        )

    def time_for_result(
        self, result: LocalSkylineResult, dims: int, hybrid: bool = True
    ) -> float:
        """Seconds for a local skyline run, from its result record.

        Uses the exact counters when present (faithful paths fill them
        in); otherwise falls back to the analytic estimate, which is the
        path the vectorised simulation processor takes. Skipped runs are
        charged only their short-circuit cost (Figure 4's point): an MBR
        rejection is one rectangle test, a filter domination is an O(n)
        bound comparison — regardless of any metric-only skyline sizes
        the result may carry.
        """
        if result.skipped == "mbr":
            return self.distance_check
        if result.skipped == "dominated":
            return self.distance_check + dims * self.value_compare
        if result.comparisons.total > 0:
            return self.time_for_counter(result.comparisons, scanned=result.scanned)
        est = estimate_comparisons(
            result.in_range, result.unreduced_size, dims
        )
        per_compare = self.id_compare if hybrid else self.value_compare
        return (
            result.scanned * self.tuple_fetch
            + result.scanned * self.distance_check
            + est * per_compare * dims
        )


def estimate_comparisons(in_range: int, skyline_size: int, dims: int) -> float:
    """Expected window-dominance comparisons of an SFS-style scan.

    The window only holds confirmed skyline members and grows from 0 to
    ``skyline_size`` over the scan; on average each scanned tuple is
    compared against about half the final window, and a dominated tuple
    stops early. ``in_range * (skyline_size / 2)`` is the standard
    back-of-envelope; exactness is irrelevant because the cost model is
    itself calibrated.
    """
    if in_range < 0 or skyline_size < 0 or dims < 1:
        raise ValueError("arguments must be non-negative (dims >= 1)")
    return in_range * max(skyline_size, 1) / 2.0


#: The paper's evaluation device (HP iPAQ h6365, SuperWaba runtime).
PDA_2006 = DeviceCostModel()


def calibrate(
    reference: DeviceCostModel = PDA_2006,
    slowdown: float = 1.0,
) -> DeviceCostModel:
    """Scale a cost model to a faster or slower device.

    ``slowdown`` multiplies every per-operation cost: 2.0 models a device
    half as fast as the reference, 0.1 a device ten times faster. Useful
    for sensitivity analyses ("would BF still win on a 2 GHz phone?").
    """
    if slowdown <= 0:
        raise ValueError("slowdown must be > 0")
    return DeviceCostModel(
        id_compare=reference.id_compare * slowdown,
        value_compare=reference.value_compare * slowdown,
        distance_check=reference.distance_check * slowdown,
        tuple_fetch=reference.tuple_fetch * slowdown,
        indirection=reference.indirection * slowdown,
    )


def calibrate_from_wall_time(
    measured_seconds: float,
    counter: ComparisonCounter,
    scanned: int = 0,
    indirections: int = 0,
    reference: DeviceCostModel = PDA_2006,
) -> DeviceCostModel:
    """Fit a cost model so the reference operation mix matches a measured
    wall time.

    Runs the relative per-operation ratios of ``reference`` through the
    observed operation counts, then rescales everything so the model
    reproduces ``measured_seconds`` exactly for that run. This is how a
    user targets their *own* hardware: run one local skyline with the
    faithful path, time it, and calibrate.
    """
    if measured_seconds <= 0:
        raise ValueError("measured_seconds must be > 0")
    predicted = reference.time_for_counter(
        counter, scanned=scanned, indirections=indirections
    )
    if predicted <= 0:
        raise ValueError("operation counts are empty; nothing to fit")
    return calibrate(reference, slowdown=measured_seconds / predicted)
