"""Reproduction of *Skyline Queries Against Mobile Lightweight Devices in
MANETs* (Huang, Jensen, Lu, Ooi — ICDE 2006).

The package is organised as the paper is:

* :mod:`repro.core` — skyline algorithms, dominance, filtering tuples
  (VDR), the Figure 4 local algorithm, and originator-side assembly.
* :mod:`repro.storage` — the hybrid storage model of Section 4 plus the
  flat / domain / ring alternatives it is compared against.
* :mod:`repro.data` — synthetic data generators, grid partitioning, and
  query workloads (Tables 6/7).
* :mod:`repro.net` — the MANET substrate: discrete-event engine, random
  waypoint mobility, unit-disk radio, and AODV routing.
* :mod:`repro.protocol` — the distributed query strategies: breadth-first
  flooding, depth-first token passing, and the static-grid pre-tests.
* :mod:`repro.devices` — the calibrated PDA cost model and energy meter.
* :mod:`repro.faults` — deterministic fault injection: device churn,
  link blackouts, and bursty loss windows.
* :mod:`repro.metrics` — DRR (Formula 1), response time, message counts.
* :mod:`repro.experiments` — one module per figure of Section 5.

Quick start::

    from repro import make_global_dataset, run_static_grid
    from repro import data_reduction_rate

    dataset = make_global_dataset(
        cardinality=100_000, dimensions=2, devices=25,
        distribution="independent", seed=7, value_step=1.0,
    )
    outcomes = run_static_grid(dataset)
    print(data_reduction_rate(outcomes))
"""

from .core import (
    Estimation,
    FilteringTuple,
    LocalSkylineResult,
    QueryCounter,
    QueryLog,
    SkylineAssembler,
    SkylineQuery,
    configure_local_path,
    dominates,
    dominates_values,
    local_skyline,
    local_skyline_vectorized,
    merge_skylines,
    resolve_local_path,
    select_filter,
    select_filter_set,
    skyline_bnl,
    skyline_bruteforce,
    skyline_divide_conquer,
    skyline_numpy,
    skyline_of_relation,
    skyline_sfs,
    vdr,
)
from .data import (
    GlobalDataset,
    GridPartition,
    QueryRequest,
    generate_workload,
    make_global_dataset,
)
from .devices import PDA_2006, DeviceCostModel, EnergyMeter, EnergyModel
from .faults import FaultEvent, FaultInjector, FaultSchedule
from .metrics import (
    bf_response_time,
    collect_metrics,
    data_reduction_rate,
    df_response_time,
    messages_per_query,
)
from .net import (
    AodvConfig,
    AodvRouter,
    RadioConfig,
    RandomWaypoint,
    Simulator,
    StaticPlacement,
    World,
)
from .protocol import (
    BFDevice,
    DFDevice,
    ProtocolConfig,
    QueryRecord,
    SimulationConfig,
    SimulationResult,
    run_manet_simulation,
    run_static_grid,
    run_static_query,
)
from .storage import (
    AttributeSpec,
    DomainStorage,
    FlatStorage,
    HybridStorage,
    Preference,
    Relation,
    RelationSchema,
    RingStorage,
    SiteTuple,
    uniform_schema,
    union_all,
)

__version__ = "1.0.0"

__all__ = [
    "AodvConfig",
    "AodvRouter",
    "AttributeSpec",
    "BFDevice",
    "DFDevice",
    "DeviceCostModel",
    "DomainStorage",
    "EnergyMeter",
    "EnergyModel",
    "Estimation",
    "FaultEvent",
    "FaultInjector",
    "FaultSchedule",
    "FilteringTuple",
    "FlatStorage",
    "GlobalDataset",
    "GridPartition",
    "HybridStorage",
    "LocalSkylineResult",
    "PDA_2006",
    "Preference",
    "ProtocolConfig",
    "QueryCounter",
    "QueryLog",
    "QueryRecord",
    "QueryRequest",
    "RadioConfig",
    "RandomWaypoint",
    "Relation",
    "RelationSchema",
    "RingStorage",
    "SimulationConfig",
    "SimulationResult",
    "Simulator",
    "SiteTuple",
    "SkylineAssembler",
    "SkylineQuery",
    "StaticPlacement",
    "World",
    "__version__",
    "bf_response_time",
    "collect_metrics",
    "configure_local_path",
    "data_reduction_rate",
    "df_response_time",
    "dominates",
    "dominates_values",
    "generate_workload",
    "local_skyline",
    "local_skyline_vectorized",
    "make_global_dataset",
    "merge_skylines",
    "messages_per_query",
    "run_manet_simulation",
    "run_static_grid",
    "run_static_query",
    "resolve_local_path",
    "select_filter",
    "select_filter_set",
    "skyline_bnl",
    "skyline_bruteforce",
    "skyline_divide_conquer",
    "skyline_numpy",
    "skyline_of_relation",
    "skyline_sfs",
    "uniform_schema",
    "union_all",
    "vdr",
]
