"""Figures 8 and 9 — DRR in the MANET simulation (Section 5.2.2-II).

Series: DF and BF query forwarding, each at query distances 100, 250,
and 500 (the paper's legend, e.g. "DF-100"). Figure 8 uses independent
data, Figure 9 anti-correlated data. Panels sweep (a) cardinality,
(b) dimensionality, (c) device count.
"""

from __future__ import annotations

from typing import List, Optional

from .config import DEFAULT, ExperimentScale
from .executor import run_points
from .manet_common import ManetPoint, sweep_points
from .runner import FigureResult

__all__ = ["manet_panel", "figure_8a", "figure_8b", "figure_8c",
           "figure_9a", "figure_9b", "figure_9c"]


def manet_panel(
    panel: str,
    distribution: str,
    metric: str,
    scale: ExperimentScale = DEFAULT,
) -> FigureResult:
    """One MANET panel for a chosen metric.

    Args:
        panel: ``a`` / ``b`` / ``c`` sweep.
        distribution: ``independent`` or ``anticorrelated``.
        metric: ``drr`` (Figures 8/9), ``response`` (Figures 10/11), or
            ``messages`` (Figure 12's per-query protocol count).
        scale: Parameter grids.
    """
    if metric not in ("drr", "response", "messages"):
        raise ValueError(f"unknown metric {metric!r}")
    x_label, x_values, points = sweep_points(panel, distribution, scale)
    fig = {
        ("drr", "independent"): "8",
        ("drr", "anticorrelated"): "9",
        ("response", "independent"): "10",
        ("response", "anticorrelated"): "11",
    }.get((metric, distribution), "12")
    result = FigureResult(
        figure=f"Figure {fig}({panel})",
        title=f"MANET {metric} on {distribution} data vs. {x_label}",
        x_label=x_label,
        x_values=x_values,
        notes=(
            f"scale={scale.name}; UNE + dynamic filter; random waypoint + AODV"
        ),
    )
    grid = {
        (strategy, distance, i): ManetPoint(
            strategy=strategy,
            distance=distance,
            cardinality=cardinality,
            dimensions=dims,
            devices=devices,
            distribution=distribution,
            scale_name=scale.name,
            seed=scale.seed + 1000 * i,
        )
        for strategy in ("df", "bf")
        for distance in scale.query_distances
        for i, (cardinality, dims, devices) in enumerate(points)
    }
    # One fan-out over the whole panel grid; the per-series loops below
    # are then pure cache lookups.
    metrics_by_point = run_points(grid.values(), scale)
    for strategy in ("df", "bf"):
        for distance in scale.query_distances:
            values: List[Optional[float]] = []
            for i in range(len(points)):
                metrics = metrics_by_point[grid[strategy, distance, i]]
                if metric == "drr":
                    values.append(metrics.drr)
                elif metric == "response":
                    values.append(metrics.response_time)
                else:
                    values.append(metrics.messages.protocol_per_query)
            result.add_series(f"{strategy.upper()}-{int(distance)}", values)
    return result


def figure_8a(scale: ExperimentScale = DEFAULT) -> FigureResult:
    """MANET DRR vs. cardinality, independent data."""
    return manet_panel("a", "independent", "drr", scale)


def figure_8b(scale: ExperimentScale = DEFAULT) -> FigureResult:
    """MANET DRR vs. dimensionality, independent data."""
    return manet_panel("b", "independent", "drr", scale)


def figure_8c(scale: ExperimentScale = DEFAULT) -> FigureResult:
    """MANET DRR vs. device count, independent data."""
    return manet_panel("c", "independent", "drr", scale)


def figure_9a(scale: ExperimentScale = DEFAULT) -> FigureResult:
    """MANET DRR vs. cardinality, anti-correlated data."""
    return manet_panel("a", "anticorrelated", "drr", scale)


def figure_9b(scale: ExperimentScale = DEFAULT) -> FigureResult:
    """MANET DRR vs. dimensionality, anti-correlated data."""
    return manet_panel("b", "anticorrelated", "drr", scale)


def figure_9c(scale: ExperimentScale = DEFAULT) -> FigureResult:
    """MANET DRR vs. device count, anti-correlated data."""
    return manet_panel("c", "anticorrelated", "drr", scale)
