"""Parallel experiment executor and the persistent run cache.

The figure sweeps of Section 5 are grids of independent
:class:`~repro.experiments.manet_common.ManetPoint` simulations — each
point is fully determined by its identity plus the experiment scale, so
they can fan out across a process pool and be recalled from disk across
invocations:

* :func:`run_points` maps a grid of points over a spawn-safe
  ``multiprocessing`` pool (``workers=1`` is the serial reference path —
  a plain in-process loop, no pool), filling the run cache so the
  subsequent figure assembly is pure lookups. Per-point seeds are fixed
  by the point identity, so serial and parallel execution produce
  bit-identical metrics (``tests/test_fast_path_parity.py`` pins this).
* :class:`RunCache` persists one JSON document per computed point,
  keyed on the point, the scale, and :data:`CACHE_SCHEMA` — bump that
  version string whenever a change alters simulation semantics, and
  every stale entry misses automatically.

Configuration:

* ``REPRO_WORKERS`` — default worker count (falls back to the CPU
  count; ``1`` forces serial).
* ``REPRO_CACHE_DIR`` — run-cache directory (default ``.repro_cache``
  in the working directory; ``off`` / ``none`` / ``0`` / empty disables
  disk persistence entirely).

Because the pool uses the ``spawn`` start method, scripts that call
:func:`run_points` (directly or via a figure function) at module level
need the standard ``if __name__ == "__main__":`` guard; ``pytest`` and
the ``repro-skyline`` CLI already satisfy this.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..metrics.collector import RunMetrics
from ..metrics.messages import MessageCounts
from .config import ExperimentScale
from .manet_common import ManetPoint

__all__ = [
    "CACHE_SCHEMA",
    "RunCache",
    "cache_root",
    "configure",
    "default_cache",
    "resolve_workers",
    "run_points",
]

#: Code-schema version of cached run documents. Bump on ANY change that
#: can alter simulation output (protocol semantics, RNG consumption,
#: metric definitions) — old entries then miss and are recomputed.
CACHE_SCHEMA = "manet-run/v1"

_WORKERS_ENV = "REPRO_WORKERS"
_CACHE_ENV = "REPRO_CACHE_DIR"
_DISABLED = ("", "off", "none", "0")

#: Process-wide overrides set by :func:`configure` (CLI flags beat env).
_workers_override: Optional[int] = None
_cache_override: Optional[str] = None
_cache_instance: Optional["RunCache"] = None
_cache_instance_root: Optional[str] = None


def configure(
    workers: Optional[int] = None, cache_dir: Optional[str] = None
) -> None:
    """Set process-wide executor defaults (used by the CLI flags).

    Args:
        workers: Default worker count; ``None`` leaves the current
            setting untouched.
        cache_dir: Run-cache directory; ``"off"`` disables disk
            persistence; ``None`` leaves the current setting untouched.
    """
    global _workers_override, _cache_override
    if workers is not None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        _workers_override = workers
    if cache_dir is not None:
        _cache_override = cache_dir


def resolve_workers(workers: Optional[int] = None) -> int:
    """Effective worker count: explicit > configure() > env > CPU count."""
    if workers is not None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        return workers
    if _workers_override is not None:
        return _workers_override
    env = os.environ.get(_WORKERS_ENV)
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return os.cpu_count() or 1


def cache_root() -> Optional[Path]:
    """Effective cache directory, or ``None`` when disk caching is off."""
    raw = (
        _cache_override
        if _cache_override is not None
        else os.environ.get(_CACHE_ENV)
    )
    if raw is None:
        return Path(".repro_cache")
    if raw.strip().lower() in _DISABLED:
        return None
    return Path(raw)


def default_cache() -> Optional["RunCache"]:
    """The process-wide :class:`RunCache` for the current cache root."""
    global _cache_instance, _cache_instance_root
    root = cache_root()
    if root is None:
        _cache_instance = None
        _cache_instance_root = None
        return None
    key = str(root)
    if _cache_instance is None or _cache_instance_root != key:
        _cache_instance = RunCache(root)
        _cache_instance_root = key
    return _cache_instance


# ---------------------------------------------------------------------------
# Disk cache
# ---------------------------------------------------------------------------


def _metrics_to_doc(metrics: RunMetrics) -> dict:
    return dataclasses.asdict(metrics)


def _metrics_from_doc(doc: dict) -> RunMetrics:
    fields = dict(doc)
    fields["messages"] = MessageCounts(**fields["messages"])
    return RunMetrics(**fields)


class RunCache:
    """One-JSON-file-per-run persistent cache.

    Keys are a SHA-256 over ``(CACHE_SCHEMA, point, scale)``; the stored
    document carries the full key material so a hash collision (or a
    hand-edited file) is detected on read instead of silently served.
    Writes are atomic (temp file + ``os.replace``), so concurrent
    writers — e.g. two figure runs racing on one grid point — at worst
    both compute; they never corrupt an entry.
    """

    def __init__(self, root: Path) -> None:
        self.root = Path(root)

    @staticmethod
    def _key_material(point: ManetPoint, scale: ExperimentScale) -> dict:
        material = {
            "schema": CACHE_SCHEMA,
            "point": dataclasses.asdict(point),
            "scale": dataclasses.asdict(scale),
        }
        # Canonicalize through JSON so the in-memory form matches what a
        # stored document reads back (tuples become lists); otherwise the
        # key check on read would never pass.
        return json.loads(json.dumps(material))

    def _path(self, point: ManetPoint, scale: ExperimentScale) -> Path:
        material = json.dumps(self._key_material(point, scale), sort_keys=True)
        digest = hashlib.sha256(material.encode()).hexdigest()[:32]
        return self.root / f"run-{digest}.json"

    def get(
        self, point: ManetPoint, scale: ExperimentScale
    ) -> Optional[RunMetrics]:
        """The cached metrics for ``point``, or ``None`` on a miss."""
        path = self._path(point, scale)
        try:
            with open(path) as fh:
                doc = json.load(fh)
        except (OSError, json.JSONDecodeError):
            return None
        if doc.get("key") != self._key_material(point, scale):
            return None
        try:
            return _metrics_from_doc(doc["metrics"])
        except (KeyError, TypeError):
            return None

    def put(
        self, point: ManetPoint, scale: ExperimentScale, metrics: RunMetrics
    ) -> None:
        """Persist ``metrics`` for ``point`` (atomic replace)."""
        path = self._path(point, scale)
        self.root.mkdir(parents=True, exist_ok=True)
        doc = {
            "key": self._key_material(point, scale),
            "metrics": _metrics_to_doc(metrics),
        }
        fd, tmp = tempfile.mkstemp(
            dir=self.root, prefix=path.stem, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(doc, fh, indent=1, sort_keys=True)
                fh.write("\n")
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def clear(self) -> int:
        """Delete every cached run under this root; returns the count."""
        removed = 0
        if not self.root.is_dir():
            return removed
        for path in self.root.glob("run-*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed


# ---------------------------------------------------------------------------
# Parallel fan-out
# ---------------------------------------------------------------------------


def _worker(
    args: Tuple[ManetPoint, ExperimentScale],
) -> Tuple[ManetPoint, RunMetrics]:
    """Pool entry point: compute one point, no cache interaction.

    Runs in a spawned child process; the parent owns both cache layers
    and persists whatever comes back.
    """
    from .manet_common import compute_manet_point

    point, scale = args
    return point, compute_manet_point(point, scale)


def run_points(
    points: Iterable[ManetPoint],
    scale: ExperimentScale,
    workers: Optional[int] = None,
) -> Dict[ManetPoint, RunMetrics]:
    """Ensure every point is computed and cached; return all metrics.

    Cached points (memory or disk) are never re-run. With more than one
    uncached point and ``workers > 1``, the remainder fans out over a
    ``spawn`` pool; per-point determinism makes the result identical to
    the serial reference path. If the pool cannot be created (restricted
    environments), the executor silently falls back to serial.
    """
    from .manet_common import run_manet_point

    ordered: List[ManetPoint] = []
    seen = set()
    for point in points:
        if point not in seen:
            seen.add(point)
            ordered.append(point)

    workers = resolve_workers(workers)
    if workers > 1:
        todo = [p for p in ordered if not _is_cached(p, scale)]
        if len(todo) > 1:
            _fan_out(todo, scale, workers)
    # Serial reference path — and the collection pass after a fan-out
    # (every point then hits a cache layer).
    return {point: run_manet_point(point, scale) for point in ordered}


def _is_cached(point: ManetPoint, scale: ExperimentScale) -> bool:
    from .manet_common import _RUN_CACHE

    if point in _RUN_CACHE:
        return True
    disk = default_cache()
    return disk is not None and disk.get(point, scale) is not None


def _spawn_safe() -> bool:
    """Whether ``spawn`` children can re-import ``__main__``.

    The spawn bootstrap re-runs the parent's main module by path; when
    the program came from stdin or an interactive prompt (``__file__``
    missing or not a real file) every worker would crash on startup and
    the pool would respawn them forever. Detect that up front and stay
    serial instead.
    """
    import sys

    main = sys.modules.get("__main__")
    if main is None:
        return False
    file = getattr(main, "__file__", None)
    if file is None:
        # Interactive / -c execution: spawn skips the main re-import.
        return True
    return os.path.isfile(file)


def _fan_out(
    todo: Sequence[ManetPoint], scale: ExperimentScale, workers: int
) -> None:
    import multiprocessing as mp

    from .manet_common import store_run

    if not _spawn_safe():
        return
    try:
        ctx = mp.get_context("spawn")
        with ctx.Pool(processes=min(workers, len(todo))) as pool:
            for point, metrics in pool.imap_unordered(
                _worker, [(p, scale) for p in todo]
            ):
                store_run(point, scale, metrics)
    except (OSError, ValueError, ImportError):
        # Pool creation failed (sandboxed environment, missing
        # semaphores, ...): the serial collection pass in run_points
        # computes whatever is still missing.
        pass
