"""Experiment parameter grids (Tables 6 and 7 of the paper).

Three scales are provided:

* ``PAPER`` — the paper's own grids (100K-1M tuples, 2 h simulations).
  Faithful but slow in pure Python; available for overnight runs.
* ``DEFAULT`` — the same sweeps at reduced cardinality / workload, sized
  so the full figure suite regenerates in minutes on a laptop. All
  trends the paper reports are scale-stable (EXPERIMENTS.md records
  paper-vs-measured at this scale).
* ``SMOKE`` — minimal grids for CI and pytest-benchmark runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

__all__ = ["ExperimentScale", "PAPER", "DEFAULT", "SMOKE", "get_scale"]


@dataclass(frozen=True)
class ExperimentScale:
    """One complete grid of experiment parameters.

    Attributes mirror Table 6 (data/grid parameters) and Table 7
    (simulation parameters); the ``manet_*`` knobs size the MANET runs.
    """

    name: str
    # Figure 5: local processing on the device.
    local_cardinalities: Tuple[int, ...]
    local_dim_cardinality: int
    dimensionalities: Tuple[int, ...]
    # Figures 6/7: static pre-tests.
    static_cardinalities: Tuple[int, ...]
    static_fixed_cardinality: int
    static_devices: int
    device_counts: Tuple[int, ...]
    # Figures 8-12: MANET simulation.
    manet_cardinalities: Tuple[int, ...]
    manet_fixed_cardinality: int
    manet_devices: int
    manet_device_counts: Tuple[int, ...]
    sim_time: float
    queries_per_device: Tuple[int, int]
    query_distances: Tuple[float, ...] = (100.0, 250.0, 500.0)
    attribute_low: float = 0.0
    attribute_high: float = 1000.0
    value_step: float = 1.0
    repeats: int = 1
    seed: int = 20060403  # ICDE 2006


PAPER = ExperimentScale(
    name="paper",
    local_cardinalities=tuple(range(10_000, 100_001, 10_000)),
    local_dim_cardinality=50_000,
    dimensionalities=(2, 3, 4, 5),
    static_cardinalities=tuple(range(100_000, 1_000_001, 100_000)),
    static_fixed_cardinality=500_000,
    static_devices=25,
    device_counts=(9, 16, 25, 36, 49, 64, 81, 100),
    manet_cardinalities=tuple(range(100_000, 1_000_001, 100_000)),
    manet_fixed_cardinality=500_000,
    manet_devices=25,
    manet_device_counts=(9, 16, 25, 36, 49, 64, 81, 100),
    sim_time=7200.0,
    queries_per_device=(1, 5),
)

DEFAULT = ExperimentScale(
    name="default",
    local_cardinalities=(2_000, 5_000, 10_000, 20_000, 40_000),
    local_dim_cardinality=10_000,
    dimensionalities=(2, 3, 4, 5),
    static_cardinalities=(50_000, 100_000, 200_000, 350_000, 500_000),
    static_fixed_cardinality=200_000,
    static_devices=25,
    device_counts=(9, 16, 25, 49, 100),
    manet_cardinalities=(50_000, 100_000, 200_000),
    manet_fixed_cardinality=100_000,
    manet_devices=25,
    manet_device_counts=(9, 16, 25, 49),
    sim_time=1800.0,
    queries_per_device=(1, 2),
)

SMOKE = ExperimentScale(
    name="smoke",
    local_cardinalities=(500, 1_000, 2_000),
    local_dim_cardinality=1_000,
    dimensionalities=(2, 3, 4),
    static_cardinalities=(10_000, 20_000, 40_000),
    static_fixed_cardinality=20_000,
    static_devices=25,
    device_counts=(9, 25, 49),
    manet_cardinalities=(10_000, 20_000),
    manet_fixed_cardinality=20_000,
    manet_devices=25,
    manet_device_counts=(9, 25),
    sim_time=600.0,
    queries_per_device=(1, 1),
    query_distances=(100.0, 250.0, 500.0),
)

_SCALES = {s.name: s for s in (PAPER, DEFAULT, SMOKE)}


def get_scale(name: str) -> ExperimentScale:
    """Look up a scale by name (``paper`` / ``default`` / ``smoke``)."""
    try:
        return _SCALES[name]
    except KeyError:
        raise ValueError(
            f"unknown scale {name!r}; choose from {sorted(_SCALES)}"
        ) from None
