"""Experiment harness: one module per figure family of Section 5."""

from .chaos_sweep import (
    ChaosPoint,
    ChaosReport,
    chaos_suite,
    run_chaos_point,
)
from .config import DEFAULT, PAPER, SMOKE, ExperimentScale, get_scale
from .continuous_sweep import (
    CONTINUOUS_SMOKE_SEEDS,
    ContinuousPoint,
    ContinuousReport,
    continuous_suite,
    run_continuous_point,
)
from .executor import RunCache, configure, resolve_workers, run_points
from .fault_sweep import fault_churn_sweep, fault_loss_sweep, run_fault_point
from .local_processing import figure_5a, figure_5b, measure_local_time
from .manet_common import ManetPoint, clear_run_cache, run_manet_point
from .manet_drr import (
    figure_8a,
    figure_8b,
    figure_8c,
    figure_9a,
    figure_9b,
    figure_9c,
    manet_panel,
)
from .message_count import figure_12
from .response_time import (
    figure_10a,
    figure_10b,
    figure_10c,
    figure_11a,
    figure_11b,
    figure_11c,
)
from .plotting import ascii_plot
from .report import markdown_report, markdown_table
from .runner import FigureResult, Series, render_table
from .sensitivity import cpu_sweep, radio_range_sweep, speed_sweep
from .static_drr import (
    figure_6a,
    figure_6b,
    figure_6c,
    figure_7a,
    figure_7b,
    figure_7c,
    static_drr_series,
    static_panel,
)

__all__ = [
    "CONTINUOUS_SMOKE_SEEDS",
    "ChaosPoint",
    "ChaosReport",
    "ContinuousPoint",
    "ContinuousReport",
    "DEFAULT",
    "ExperimentScale",
    "FigureResult",
    "ManetPoint",
    "PAPER",
    "RunCache",
    "SMOKE",
    "Series",
    "ascii_plot",
    "clear_run_cache",
    "configure",
    "chaos_suite",
    "continuous_suite",
    "cpu_sweep",
    "fault_churn_sweep",
    "fault_loss_sweep",
    "figure_5a",
    "figure_5b",
    "figure_6a",
    "figure_6b",
    "figure_6c",
    "figure_7a",
    "figure_7b",
    "figure_7c",
    "figure_8a",
    "figure_8b",
    "figure_8c",
    "figure_9a",
    "figure_9b",
    "figure_9c",
    "figure_10a",
    "figure_10b",
    "figure_10c",
    "figure_11a",
    "figure_11b",
    "figure_11c",
    "figure_12",
    "get_scale",
    "manet_panel",
    "markdown_report",
    "markdown_table",
    "measure_local_time",
    "radio_range_sweep",
    "render_table",
    "resolve_workers",
    "run_fault_point",
    "run_chaos_point",
    "run_continuous_point",
    "run_manet_point",
    "run_points",
    "speed_sweep",
    "static_drr_series",
    "static_panel",
]
