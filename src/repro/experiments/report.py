"""Markdown report generation for experiment results.

``python -m repro all --scale default --output report.md`` regenerates
every figure and writes the results as a markdown document — the same
content EXPERIMENTS.md is built from, so reruns on other machines can be
diffed against the committed baseline.
"""

from __future__ import annotations

from typing import Sequence

from .runner import FigureResult

__all__ = ["markdown_table", "markdown_report"]


def markdown_table(result: FigureResult, precision: int = 4) -> str:
    """One figure panel as a markdown table."""
    header = [result.x_label] + [s.name for s in result.series]
    lines = [
        f"### {result.figure} — {result.title}",
        "",
        "| " + " | ".join(header) + " |",
        "|" + "|".join("---" for _ in header) + "|",
    ]
    for i, x in enumerate(result.x_values):
        row = [_fmt(x, precision)] + [
            _fmt(s.values[i], precision) for s in result.series
        ]
        lines.append("| " + " | ".join(row) + " |")
    if result.notes:
        lines.append("")
        lines.append(f"*{result.notes}*")
    return "\n".join(lines)


def markdown_report(
    results: Sequence[FigureResult],
    title: str = "Measured results",
    preamble: str = "",
) -> str:
    """A full markdown document for a batch of figure results."""
    lines = [f"# {title}", ""]
    if preamble:
        lines.extend([preamble, ""])
    for result in results:
        lines.append(markdown_table(result))
        lines.append("")
    return "\n".join(lines)


def _fmt(value, precision: int) -> str:
    if value is None:
        return "–"
    if isinstance(value, float):
        return f"{value:.{precision}g}"
    return str(value)
