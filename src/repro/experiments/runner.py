"""Shared experiment plumbing: result tables and rendering.

Every figure module produces a :class:`FigureResult` — the series the
paper plots, as numbers — and the CLI / benchmarks render them as text
tables. Keeping results structured (instead of printing ad hoc) lets the
benchmark suite assert the qualitative shapes the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

__all__ = ["Series", "FigureResult", "render_table"]


@dataclass
class Series:
    """One plotted line: a name and a y-value per x grid point."""

    name: str
    values: List[Optional[float]]

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("series name must be non-empty")


@dataclass
class FigureResult:
    """All data behind one figure panel.

    Attributes:
        figure: Paper artifact id, e.g. ``"Figure 6(a)"``.
        title: Human-readable description.
        x_label: Name of the swept parameter.
        x_values: The sweep grid.
        series: One :class:`Series` per plotted line.
        notes: Anything a reader should know (scale reductions, etc.).
    """

    figure: str
    title: str
    x_label: str
    x_values: List
    series: List[Series] = field(default_factory=list)
    notes: str = ""

    def add_series(self, name: str, values: Sequence[Optional[float]]) -> None:
        """Append one series, validating its length against the grid."""
        values = list(values)
        if len(values) != len(self.x_values):
            raise ValueError(
                f"series {name!r} has {len(values)} points but the grid "
                f"has {len(self.x_values)}"
            )
        self.series.append(Series(name=name, values=values))

    def get(self, name: str) -> List[Optional[float]]:
        """Values of the series called ``name``."""
        for s in self.series:
            if s.name == name:
                return s.values
        raise KeyError(
            f"no series {name!r}; have {[s.name for s in self.series]}"
        )

    def render(self) -> str:
        """Aligned text table of the panel."""
        return render_table(self)


def render_table(result: FigureResult, precision: int = 4) -> str:
    """Format a :class:`FigureResult` as an aligned text table."""
    header = [result.x_label] + [s.name for s in result.series]
    rows: List[List[str]] = []
    for i, x in enumerate(result.x_values):
        row = [_fmt(x, precision)]
        for s in result.series:
            row.append(_fmt(s.values[i], precision))
        rows.append(row)
    widths = [
        max(len(header[c]), *(len(r[c]) for r in rows)) if rows else len(header[c])
        for c in range(len(header))
    ]
    lines = [
        f"{result.figure}: {result.title}",
        "  " + "  ".join(h.rjust(w) for h, w in zip(header, widths)),
        "  " + "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  " + "  ".join(v.rjust(w) for v, w in zip(row, widths)))
    if result.notes:
        lines.append(f"  note: {result.notes}")
    return "\n".join(lines)


def _fmt(value, precision: int) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.{precision}g}"
    return str(value)
