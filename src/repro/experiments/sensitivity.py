"""Sensitivity analyses beyond the paper's grids.

The paper fixes the radio parameters, device speed, and device CPU
class. These sweeps ask how robust its conclusions are to each:

* :func:`radio_range_sweep` — connectivity is the lifeblood of both
  strategies; short ranges partition the network, long ranges make BF's
  flood cheap.
* :func:`speed_sweep` — faster devices break more routes mid-query.
* :func:`cpu_sweep` — BF's advantage rests on parallelizing *slow* local
  processing; on fast CPUs the network dominates and the gap narrows.

Each returns a :class:`~repro.experiments.runner.FigureResult` so the
CLI/report tooling applies unchanged.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..core.filtering import Estimation
from ..data.partition import make_global_dataset
from ..data.workload import generate_workload
from ..devices.cost_model import PDA_2006, calibrate
from ..metrics.collector import collect_metrics
from ..net.world import RadioConfig
from ..protocol.coordinator import SimulationConfig, run_manet_simulation
from ..protocol.device import ProtocolConfig
from .config import DEFAULT, ExperimentScale
from .runner import FigureResult

__all__ = ["radio_range_sweep", "speed_sweep", "cpu_sweep"]


def _run(
    scale: ExperimentScale,
    strategy: str,
    radio: Optional[RadioConfig] = None,
    speed_range=None,
    slowdown: float = 1.0,
    seed: int = 0,
):
    dataset = make_global_dataset(
        scale.manet_fixed_cardinality, 2, scale.manet_devices,
        "independent", seed=scale.seed + seed, value_step=scale.value_step,
    )
    workload = generate_workload(
        scale.manet_devices, scale.sim_time, 250.0,
        scale.queries_per_device, seed=scale.seed + seed + 1,
    )
    protocol = ProtocolConfig(
        estimation=Estimation.UNDER,
        cost_model=calibrate(PDA_2006, slowdown=slowdown),
    )
    config = SimulationConfig(
        strategy=strategy,
        sim_time=scale.sim_time,
        radio=radio if radio is not None else RadioConfig(),
        protocol=protocol,
        speed_range=speed_range if speed_range is not None else (2.0, 10.0),
        seed=scale.seed + seed + 2,
    )
    result = run_manet_simulation(dataset, workload, config)
    return collect_metrics(result, strategy)


def radio_range_sweep(
    ranges: Sequence[float] = (150.0, 250.0, 400.0),
    scale: ExperimentScale = DEFAULT,
    metric: str = "response",
) -> FigureResult:
    """BF vs DF across radio ranges.

    Short ranges fragment the network (fewer participants, partial
    results); long ranges collapse hop counts.
    """
    result = FigureResult(
        figure="Sensitivity: radio range",
        title=f"{metric} vs. radio range (m)",
        x_label="radio range",
        x_values=list(ranges),
        notes=f"scale={scale.name}",
    )
    for strategy in ("bf", "df"):
        values: List[Optional[float]] = []
        for i, radio_range in enumerate(ranges):
            metrics = _run(
                scale, strategy,
                radio=RadioConfig(radio_range=radio_range),
                seed=10_000 + i,
            )
            values.append(_pick(metrics, metric))
        result.add_series(strategy.upper(), values)
    return result


def speed_sweep(
    speeds: Sequence[float] = (2.0, 10.0, 30.0),
    scale: ExperimentScale = DEFAULT,
    metric: str = "participants",
) -> FigureResult:
    """BF vs DF across device speeds (max of a 1:5 speed band)."""
    result = FigureResult(
        figure="Sensitivity: device speed",
        title=f"{metric} vs. max device speed (m/s)",
        x_label="max speed",
        x_values=list(speeds),
        notes=f"scale={scale.name}; speed band = [max/5, max]",
    )
    for strategy in ("bf", "df"):
        values: List[Optional[float]] = []
        for i, vmax in enumerate(speeds):
            metrics = _run(
                scale, strategy,
                speed_range=(vmax / 5.0, vmax),
                seed=20_000 + i,
            )
            values.append(_pick(metrics, metric))
        result.add_series(strategy.upper(), values)
    return result


def cpu_sweep(
    slowdowns: Sequence[float] = (0.1, 1.0, 10.0),
    scale: ExperimentScale = DEFAULT,
    metric: str = "response",
) -> FigureResult:
    """BF vs DF across device CPU classes.

    ``slowdown=1`` is the 2006 PDA; 0.1 a device ten times faster; 10 a
    sensor-class device ten times slower. The BF-over-DF response-time
    ratio should *grow* with slowdown — parallelism pays the most when
    local processing dominates.
    """
    result = FigureResult(
        figure="Sensitivity: device CPU",
        title=f"{metric} vs. CPU slowdown factor",
        x_label="slowdown",
        x_values=list(slowdowns),
        notes=f"scale={scale.name}; 1.0 = the paper's PDA",
    )
    for strategy in ("bf", "df"):
        values: List[Optional[float]] = []
        for i, slowdown in enumerate(slowdowns):
            metrics = _run(scale, strategy, slowdown=slowdown, seed=30_000 + i)
            values.append(_pick(metrics, metric))
        result.add_series(strategy.upper(), values)
    return result


def _pick(metrics, metric: str):
    if metric == "response":
        return metrics.response_time
    if metric == "drr":
        return metrics.drr
    if metric == "messages":
        return metrics.messages.protocol_per_query
    if metric == "participants":
        return metrics.participants_per_query
    raise ValueError(f"unknown metric {metric!r}")
