"""Shared MANET experiment driver for Figures 8-12.

One simulation run yields DRR, response time, and message counts at
once; the per-figure modules slice the same memoised runs, so
regenerating Figure 10 after Figure 8 costs nothing extra. Runs are
cached at two layers: an in-process memo (same object back within one
interpreter) and the persistent on-disk
:class:`~repro.experiments.executor.RunCache`, keyed on the point, the
scale, and the executor's code-schema version — so re-running a figure
suite across invocations skips every already-computed point.

Simulation settings follow Table 7 (random waypoint at 2-10 m/s, 120 s
holding time, AODV); the paper's under-estimated, dynamically updated
filtering tuple is used throughout ("we use only under-estimation ...
and dynamically update them between mobile devices", Section 5.2.2-II).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..core.filtering import Estimation
from ..data.partition import make_global_dataset
from ..data.workload import generate_workload
from ..metrics.collector import RunMetrics, collect_metrics
from ..obs import Observer, telemetry_root
from ..protocol.coordinator import SimulationConfig, run_manet_simulation
from ..protocol.device import ProtocolConfig
from .config import DEFAULT, ExperimentScale

__all__ = [
    "ManetPoint",
    "compute_manet_point",
    "run_manet_point",
    "store_run",
    "clear_run_cache",
]


@dataclass(frozen=True)
class ManetPoint:
    """Identity of one simulation run in the sweep grids."""

    strategy: str
    distance: float
    cardinality: int
    dimensions: int
    devices: int
    distribution: str
    scale_name: str
    seed: int


#: In-process read-through layer above the persistent disk cache.
_RUN_CACHE: Dict[ManetPoint, RunMetrics] = {}


def clear_run_cache() -> None:
    """Drop memoised runs — in-process memo *and* the current on-disk
    cache (tests use this for isolation)."""
    from . import executor

    _RUN_CACHE.clear()
    disk = executor.default_cache()
    if disk is not None:
        disk.clear()


def compute_manet_point(
    point: ManetPoint, scale: ExperimentScale = DEFAULT, observer=None
) -> RunMetrics:
    """Run one full MANET simulation and aggregate it (no caching).

    This is the pure compute path: deterministic in ``(point, scale)``.
    Pool workers call it directly; everything else should go through
    :func:`run_manet_point`.

    When ``observer`` is given (or telemetry is enabled process-wide via
    ``REPRO_OBS`` / ``repro --obs``), the run is traced; with a
    telemetry directory configured, the run's telemetry bundle is
    written under ``<dir>/<scale>/<point-slug>/``. Tracing is passive —
    the returned metrics are bit-identical either way.
    """
    if point.scale_name != scale.name:
        raise ValueError(
            f"point was built for scale {point.scale_name!r}, got {scale.name!r}"
        )
    obs_dir = telemetry_root()
    if observer is None and obs_dir is not None:
        observer = Observer()
    dataset = make_global_dataset(
        point.cardinality,
        point.dimensions,
        point.devices,
        point.distribution,
        seed=point.seed,
        value_step=scale.value_step,
    )
    workload = generate_workload(
        devices=point.devices,
        sim_time=scale.sim_time,
        distance=point.distance,
        queries_per_device=scale.queries_per_device,
        seed=point.seed + 1,
    )
    config = SimulationConfig(
        strategy=point.strategy,
        sim_time=scale.sim_time,
        protocol=ProtocolConfig(
            use_filter=True,
            dynamic_filter=True,
            estimation=Estimation.UNDER,
        ),
        seed=point.seed + 2,
    )
    result = run_manet_simulation(dataset, workload, config, observer=observer)
    metrics = collect_metrics(result, point.strategy)
    if observer is not None and obs_dir is not None:
        from .tracing import dump_run_telemetry, point_slug

        dump_run_telemetry(
            observer, obs_dir / scale.name / point_slug(point),
            metrics=metrics,
        )
    return metrics


def store_run(
    point: ManetPoint, scale: ExperimentScale, metrics: RunMetrics
) -> None:
    """Record computed metrics in both cache layers."""
    from . import executor

    _RUN_CACHE[point] = metrics
    disk = executor.default_cache()
    if disk is not None:
        disk.put(point, scale, metrics)


def run_manet_point(
    point: ManetPoint, scale: ExperimentScale = DEFAULT
) -> RunMetrics:
    """Run (or recall) one full MANET simulation and aggregate it."""
    from . import executor

    if point.scale_name != scale.name:
        raise ValueError(
            f"point was built for scale {point.scale_name!r}, got {scale.name!r}"
        )
    cached = _RUN_CACHE.get(point)
    if cached is not None:
        return cached
    disk = executor.default_cache()
    if disk is not None:
        metrics = disk.get(point, scale)
        if metrics is not None:
            _RUN_CACHE[point] = metrics
            return metrics
    metrics = compute_manet_point(point, scale)
    store_run(point, scale, metrics)
    return metrics


def sweep_points(
    panel: str,
    distribution: str,
    scale: ExperimentScale,
) -> Tuple[str, list, list]:
    """Grid of one MANET panel: (x_label, x_values, [(card, dims, m)])."""
    if panel == "a":
        xs = list(scale.manet_cardinalities)
        points = [(c, 2, scale.manet_devices) for c in xs]
        return "cardinality", xs, points
    if panel == "b":
        xs = list(scale.dimensionalities)
        points = [
            (scale.manet_fixed_cardinality, n, scale.manet_devices) for n in xs
        ]
        return "dimensions", xs, points
    if panel == "c":
        xs = list(scale.manet_device_counts)
        points = [(scale.manet_fixed_cardinality, 2, m) for m in xs]
        return "devices", xs, points
    raise ValueError(f"panel must be a, b, or c, got {panel!r}")
