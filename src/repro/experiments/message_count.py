"""Figure 12 — query message count vs. number of mobile devices.

"In the simulation we found that the cardinality, the dimensionality,
and the distribution have little impact on the message count. Therefore,
we only show ... how the message count varies as the number of mobile
devices increases" (Section 5.2.4). Series: BF and DF, protocol frames
per query, at the middle query distance (250).
"""

from __future__ import annotations

from typing import List, Optional

from .config import DEFAULT, ExperimentScale
from .executor import run_points
from .manet_common import ManetPoint, sweep_points
from .runner import FigureResult

__all__ = ["figure_12"]


def figure_12(
    scale: ExperimentScale = DEFAULT,
    distance: float = 250.0,
    distribution: str = "independent",
) -> FigureResult:
    """Per-query protocol message count vs. device count, BF vs DF."""
    x_label, x_values, points = sweep_points("c", distribution, scale)
    result = FigureResult(
        figure="Figure 12",
        title="Query message count vs. number of mobile devices",
        x_label=x_label,
        x_values=x_values,
        notes=(
            f"scale={scale.name}; protocol frames per issued query at "
            f"d={int(distance)}; AODV control frames excluded"
        ),
    )
    grid = {
        (strategy, i): ManetPoint(
            strategy=strategy,
            distance=distance,
            cardinality=cardinality,
            dimensions=dims,
            devices=devices,
            distribution=distribution,
            scale_name=scale.name,
            seed=scale.seed + 1000 * i,
        )
        for strategy in ("bf", "df")
        for i, (cardinality, dims, devices) in enumerate(points)
    }
    metrics_by_point = run_points(grid.values(), scale)
    for strategy in ("bf", "df"):
        values: List[Optional[float]] = []
        for i in range(len(points)):
            metrics = metrics_by_point[grid[strategy, i]]
            values.append(metrics.messages.protocol_per_query)
        result.add_series(strategy.upper(), values)
    return result
