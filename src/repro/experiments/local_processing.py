"""Figure 5 — local skyline processing time on the device (Section 5.1).

Hybrid storage (HS, the paper's scheme) versus flat storage (FS, BNL
baseline), on independent (IN) and anti-correlated (AC) data. The paper
measured wall time on an HP iPAQ; we run the same faithful per-tuple
algorithms, count their operations exactly, and convert counts into
device seconds with the calibrated PDA cost model — the methodology the
paper itself uses when it folds "estimated local processing costs" into
the simulation (Section 5.2.3). Wall-clock numbers for the same runs are
produced by ``benchmarks/test_fig5_*``.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..core.local import local_skyline
from ..core.query import SkylineQuery
from ..data import generators
from ..data.spatial import uniform_positions
from ..devices.cost_model import DeviceCostModel, PDA_2006
from ..storage.flat import FlatStorage
from ..storage.hybrid import HybridStorage
from ..storage.relation import Relation
from ..storage.schema import uniform_schema
from .config import DEFAULT, ExperimentScale
from .runner import FigureResult

__all__ = ["device_dataset", "measure_local_time", "figure_5a", "figure_5b"]

#: The device experiments use the domain {0.0, 0.1, ..., 9.9}
#: (100 distinct values -> byte IDs), Section 5.1.
DEVICE_DOMAIN = (0.0, 9.9)
DEVICE_STEP = 0.1

#: Unbounded query distance: Figure 5 varies data size, not the region.
_UNBOUNDED = 1.0e12


def device_dataset(
    cardinality: int,
    dimensions: int,
    distribution: str,
    seed: int,
) -> Relation:
    """One device-resident relation with the Section 5.1 value domain."""
    schema = uniform_schema(
        dimensions, low=DEVICE_DOMAIN[0], high=DEVICE_DOMAIN[1]
    )
    rng = np.random.default_rng(seed)
    unit = generators.generate(distribution, cardinality, dimensions, rng)
    values = generators.scale_to_domain(unit, schema)
    values = np.clip(
        generators.quantize(values, DEVICE_STEP), schema.lows, schema.highs
    )
    xy = uniform_positions(cardinality, schema.spatial_extent, rng)
    return Relation(schema, xy, values)


def measure_local_time(
    relation: Relation,
    storage_kind: str,
    cost_model: DeviceCostModel = PDA_2006,
    path: Optional[str] = None,
) -> float:
    """Modelled PDA seconds for one local skyline over ``relation``.

    ``storage_kind`` is ``"hybrid"`` (the paper's HS + ID-based SFS) or
    ``"flat"`` (FS + BNL). Runs the faithful algorithm and prices its
    exact operation counts; ``path`` picks the fast kernels or the
    reference loops (identical counts either way, so the modelled
    seconds don't depend on it — only wall time does).
    """
    if storage_kind == "hybrid":
        storage = HybridStorage(relation)
    elif storage_kind == "flat":
        storage = FlatStorage(relation)
    else:
        raise ValueError(f"storage_kind must be hybrid or flat, got {storage_kind!r}")
    center = (
        (relation.schema.spatial_extent[0] + relation.schema.spatial_extent[2]) / 2,
        (relation.schema.spatial_extent[1] + relation.schema.spatial_extent[3]) / 2,
    )
    query = SkylineQuery(origin=0, cnt=0, pos=center, d=_UNBOUNDED)
    result = local_skyline(storage, query, None, path=path)
    return cost_model.time_for_counter(result.comparisons, scanned=result.scanned)


def figure_5a(
    scale: ExperimentScale = DEFAULT,
    cost_model: DeviceCostModel = PDA_2006,
    path: Optional[str] = None,
) -> FigureResult:
    """Processing time vs. cardinality (2 non-spatial attributes)."""
    result = FigureResult(
        figure="Figure 5(a)",
        title="Local processing time vs. cardinality (n=2), HS vs FS",
        x_label="cardinality",
        x_values=list(scale.local_cardinalities),
        notes=f"modelled PDA seconds; scale={scale.name}",
    )
    series: Dict[str, list] = {
        "HS-IN": [], "FS-IN": [], "HS-AC": [], "FS-AC": [],
    }
    for i, cardinality in enumerate(scale.local_cardinalities):
        for dist, tag in (("independent", "IN"), ("anticorrelated", "AC")):
            relation = device_dataset(
                cardinality, 2, dist, seed=scale.seed + i
            )
            series[f"HS-{tag}"].append(
                measure_local_time(relation, "hybrid", cost_model, path=path)
            )
            series[f"FS-{tag}"].append(
                measure_local_time(relation, "flat", cost_model, path=path)
            )
    for name in ("HS-IN", "FS-IN", "HS-AC", "FS-AC"):
        result.add_series(name, series[name])
    return result


def figure_5b(
    scale: ExperimentScale = DEFAULT,
    cost_model: DeviceCostModel = PDA_2006,
    path: Optional[str] = None,
) -> FigureResult:
    """Processing time vs. dimensionality (fixed cardinality).

    The paper plots the average over IN and AC here "because their costs
    are very close to each other for each dimensionality".
    """
    result = FigureResult(
        figure="Figure 5(b)",
        title=(
            f"Local processing time vs. dimensionality "
            f"(cardinality={scale.local_dim_cardinality}), HS vs FS"
        ),
        x_label="dimensions",
        x_values=list(scale.dimensionalities),
        notes=f"modelled PDA seconds, mean of IN and AC; scale={scale.name}",
    )
    hs, fs = [], []
    for i, dims in enumerate(scale.dimensionalities):
        hs_times, fs_times = [], []
        for dist in ("independent", "anticorrelated"):
            relation = device_dataset(
                scale.local_dim_cardinality, dims, dist,
                seed=scale.seed + 100 + i,
            )
            hs_times.append(
                measure_local_time(relation, "hybrid", cost_model, path=path)
            )
            fs_times.append(
                measure_local_time(relation, "flat", cost_model, path=path)
            )
        hs.append(sum(hs_times) / len(hs_times))
        fs.append(sum(fs_times) / len(fs_times))
    result.add_series("HS", hs)
    result.add_series("FS", fs)
    return result
