"""Degradation curves under injected faults (beyond the paper).

The paper's evaluation assumes every device stays up; these sweeps ask
how gracefully each strategy degrades when they don't:

* :func:`fault_loss_sweep` — coverage (or response time) vs. the
  independent frame-loss rate. BF's redundancy (every device replies
  directly, now with ACK'd retransmission) should degrade gently; DF's
  single token is fragile, but the originator's watchdog re-issues it.
* :func:`fault_churn_sweep` — coverage (or response time) vs. the
  fraction of devices that crash (and later recover) mid-run.

Each returns a :class:`~repro.experiments.runner.FigureResult` so the
CLI/report tooling applies unchanged, and each derives its fault
schedule deterministically from the scale seed — rerunning a sweep
replays the identical churn.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..core.filtering import Estimation
from ..data.partition import make_global_dataset
from ..data.workload import generate_workload
from ..faults import FaultSchedule
from ..metrics.collector import RunMetrics, collect_metrics
from ..net.world import RadioConfig
from ..protocol.coordinator import SimulationConfig, run_manet_simulation
from ..protocol.device import ProtocolConfig
from .config import DEFAULT, ExperimentScale
from .runner import FigureResult
from .sensitivity import _pick as _pick_base

__all__ = ["fault_loss_sweep", "fault_churn_sweep", "run_fault_point"]


def run_fault_point(
    scale: ExperimentScale,
    strategy: str,
    loss_rate: float = 0.0,
    crash_fraction: float = 0.0,
    mean_downtime: float = 120.0,
    seed: int = 0,
) -> RunMetrics:
    """One simulation under faults, aggregated.

    The fault schedule is generated from ``scale.seed + seed`` — the
    same arguments always inject the same churn.
    """
    dataset = make_global_dataset(
        scale.manet_fixed_cardinality, 2, scale.manet_devices,
        "independent", seed=scale.seed + seed, value_step=scale.value_step,
    )
    workload = generate_workload(
        scale.manet_devices, scale.sim_time, 250.0,
        scale.queries_per_device, seed=scale.seed + seed + 1,
    )
    faults = None
    if crash_fraction > 0:
        faults = FaultSchedule.generate(
            node_count=scale.manet_devices,
            sim_time=scale.sim_time,
            seed=scale.seed + seed + 2,
            crash_fraction=crash_fraction,
            mean_downtime=mean_downtime,
        )
    config = SimulationConfig(
        strategy=strategy,
        sim_time=scale.sim_time,
        radio=RadioConfig(loss_rate=loss_rate),
        protocol=ProtocolConfig(estimation=Estimation.UNDER),
        seed=scale.seed + seed + 3,
        faults=faults,
    )
    result = run_manet_simulation(dataset, workload, config)
    return collect_metrics(result, strategy)


def fault_loss_sweep(
    loss_rates: Sequence[float] = (0.0, 0.1, 0.3, 0.5),
    scale: ExperimentScale = DEFAULT,
    metric: str = "coverage",
) -> FigureResult:
    """BF vs DF degradation across frame-loss rates."""
    result = FigureResult(
        figure="Faults: loss rate",
        title=f"{metric} vs. frame loss rate",
        x_label="loss rate",
        x_values=list(loss_rates),
        notes=f"scale={scale.name}; coverage 1.0 = full attainable answer",
    )
    for strategy in ("bf", "df"):
        values: List[Optional[float]] = []
        for i, rate in enumerate(loss_rates):
            metrics = run_fault_point(
                scale, strategy, loss_rate=rate, seed=40_000 + i
            )
            values.append(_pick(metrics, metric))
        result.add_series(strategy.upper(), values)
    return result


def fault_churn_sweep(
    crash_fractions: Sequence[float] = (0.0, 0.1, 0.2, 0.4),
    scale: ExperimentScale = DEFAULT,
    metric: str = "coverage",
) -> FigureResult:
    """BF vs DF degradation across device-churn intensities.

    ``crash_fraction`` of the fleet crashes once each at a random time,
    staying down for an exponential holdoff (mean 120 s) before
    rejoining clean.
    """
    result = FigureResult(
        figure="Faults: device churn",
        title=f"{metric} vs. crashed device fraction",
        x_label="crash fraction",
        x_values=list(crash_fractions),
        notes=f"scale={scale.name}; crashed devices rejoin after ~120 s",
    )
    for strategy in ("bf", "df"):
        values: List[Optional[float]] = []
        for i, fraction in enumerate(crash_fractions):
            metrics = run_fault_point(
                scale, strategy, crash_fraction=fraction, seed=50_000 + i
            )
            values.append(_pick(metrics, metric))
        result.add_series(strategy.upper(), values)
    return result


def _pick(metrics: RunMetrics, metric: str):
    if metric == "coverage":
        return metrics.coverage
    return _pick_base(metrics, metric)
