"""Figures 10 and 11 — response time in the MANET simulation.

BF response time is the 80%-quorum arrival time; DF's is the token's
round trip (Section 5.2.3). Response time includes both the wireless
transfer delays from the network simulation and the modelled local
processing time on each device — exactly the paper's composition.
"""

from __future__ import annotations

from .config import DEFAULT, ExperimentScale
from .manet_drr import manet_panel
from .runner import FigureResult

__all__ = ["figure_10a", "figure_10b", "figure_10c",
           "figure_11a", "figure_11b", "figure_11c"]


def figure_10a(scale: ExperimentScale = DEFAULT) -> FigureResult:
    """Response time vs. cardinality, independent data."""
    return manet_panel("a", "independent", "response", scale)


def figure_10b(scale: ExperimentScale = DEFAULT) -> FigureResult:
    """Response time vs. dimensionality, independent data."""
    return manet_panel("b", "independent", "response", scale)


def figure_10c(scale: ExperimentScale = DEFAULT) -> FigureResult:
    """Response time vs. device count, independent data."""
    return manet_panel("c", "independent", "response", scale)


def figure_11a(scale: ExperimentScale = DEFAULT) -> FigureResult:
    """Response time vs. cardinality, anti-correlated data."""
    return manet_panel("a", "anticorrelated", "response", scale)


def figure_11b(scale: ExperimentScale = DEFAULT) -> FigureResult:
    """Response time vs. dimensionality, anti-correlated data."""
    return manet_panel("b", "anticorrelated", "response", scale)


def figure_11c(scale: ExperimentScale = DEFAULT) -> FigureResult:
    """Response time vs. device count, anti-correlated data."""
    return manet_panel("c", "anticorrelated", "response", scale)
