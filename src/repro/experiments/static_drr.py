"""Figures 6 and 7 — data reduction rate in the static setting.

Six series per panel: single filter (SF) vs. dynamically updated filter
(DF), each under over-estimated (OVE), exact (EXT), and under-estimated
(UNE) dominating regions. Every device originates one query; DRR is
pooled over all of them (Formula 1).

Panels: (a) global cardinality, (b) dimensionality, (c) device count.
Figure 6 uses independent data, Figure 7 anti-correlated data.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.filtering import Estimation
from ..data.partition import make_global_dataset
from ..metrics.drr import data_reduction_rate
from ..protocol.static_grid import StaticGridCache, run_static_grid
from .config import DEFAULT, ExperimentScale
from .runner import FigureResult

__all__ = ["static_drr_series", "figure_6a", "figure_6b", "figure_6c",
           "figure_7a", "figure_7b", "figure_7c", "static_panel"]

_SERIES = (
    ("SF-OVE", False, Estimation.OVER),
    ("SF-EXT", False, Estimation.EXACT),
    ("SF-UNE", False, Estimation.UNDER),
    ("DF-OVE", True, Estimation.OVER),
    ("DF-EXT", True, Estimation.EXACT),
    ("DF-UNE", True, Estimation.UNDER),
)


def static_drr_series(
    cardinality: int,
    dimensions: int,
    devices: int,
    distribution: str,
    seed: int,
) -> Dict[str, Optional[float]]:
    """DRR of all six filtering variants on one dataset."""
    dataset = make_global_dataset(
        cardinality, dimensions, devices, distribution,
        seed=seed, value_step=1.0,
    )
    cache = StaticGridCache(dataset)
    out: Dict[str, Optional[float]] = {}
    for name, dynamic, estimation in _SERIES:
        outcomes = run_static_grid(
            dataset, dynamic_filter=dynamic, estimation=estimation,
            cache=cache, assemble=False,
        )
        out[name] = data_reduction_rate(outcomes)
    return out


def static_panel(
    panel: str,
    distribution: str,
    scale: ExperimentScale = DEFAULT,
) -> FigureResult:
    """One panel of Figure 6 (independent) or 7 (anti-correlated).

    Args:
        panel: ``a`` (cardinality sweep), ``b`` (dimensionality sweep),
            or ``c`` (device-count sweep).
        distribution: ``independent`` or ``anticorrelated``.
        scale: Parameter grids.
    """
    fig_no = "6" if distribution == "independent" else "7"
    dist_tag = "independent" if distribution == "independent" else "anti-correlated"
    if panel == "a":
        x_values: List = list(scale.static_cardinalities)
        points = [
            (c, 2, scale.static_devices) for c in scale.static_cardinalities
        ]
        x_label = "cardinality"
    elif panel == "b":
        x_values = list(scale.dimensionalities)
        points = [
            (scale.static_fixed_cardinality, n, scale.static_devices)
            for n in scale.dimensionalities
        ]
        x_label = "dimensions"
    elif panel == "c":
        x_values = list(scale.device_counts)
        points = [
            (scale.static_fixed_cardinality, 2, m) for m in scale.device_counts
        ]
        x_label = "devices"
    else:
        raise ValueError(f"panel must be a, b, or c, got {panel!r}")

    result = FigureResult(
        figure=f"Figure {fig_no}({panel})",
        title=f"Static-setting DRR on {dist_tag} data vs. {x_label}",
        x_label=x_label,
        x_values=x_values,
        notes=f"scale={scale.name}; every device originates once",
    )
    columns: Dict[str, List[Optional[float]]] = {name: [] for name, _, _ in _SERIES}
    for i, (cardinality, dims, devices) in enumerate(points):
        # Average over `scale.repeats` independently seeded datasets;
        # the paper likewise averages many queries per plotted point.
        accumulated: Dict[str, List[float]] = {name: [] for name, _, _ in _SERIES}
        for repeat in range(max(scale.repeats, 1)):
            series = static_drr_series(
                cardinality, dims, devices, distribution,
                seed=scale.seed + i + 7919 * repeat,
            )
            for name, value in series.items():
                if value is not None:
                    accumulated[name].append(value)
        for name in columns:
            values = accumulated[name]
            columns[name].append(sum(values) / len(values) if values else None)
    for name, _, _ in _SERIES:
        result.add_series(name, columns[name])
    return result


def figure_6a(scale: ExperimentScale = DEFAULT) -> FigureResult:
    """DRR vs. cardinality, independent data."""
    return static_panel("a", "independent", scale)


def figure_6b(scale: ExperimentScale = DEFAULT) -> FigureResult:
    """DRR vs. dimensionality, independent data."""
    return static_panel("b", "independent", scale)


def figure_6c(scale: ExperimentScale = DEFAULT) -> FigureResult:
    """DRR vs. device count, independent data."""
    return static_panel("c", "independent", scale)


def figure_7a(scale: ExperimentScale = DEFAULT) -> FigureResult:
    """DRR vs. cardinality, anti-correlated data."""
    return static_panel("a", "anticorrelated", scale)


def figure_7b(scale: ExperimentScale = DEFAULT) -> FigureResult:
    """DRR vs. dimensionality, anti-correlated data."""
    return static_panel("b", "anticorrelated", scale)


def figure_7c(scale: ExperimentScale = DEFAULT) -> FigureResult:
    """DRR vs. device count, anti-correlated data."""
    return static_panel("c", "anticorrelated", scale)
