"""Continuous-subscription sweep: delta maintenance vs. naive re-flood.

For each seed the suite runs the *same* subscription scenario (same
dataset, mobility, data-update schedule) once per maintenance mode and
compares what each mode paid per refresh epoch and how stale its
answer was. Delta maintenance must strictly dominate the naive
re-flood-every-tick baseline on messages per refresh — that dominance
is the benchmark gate ``benchmarks/bench_continuous.py`` commits to
``BENCH_continuous.json``.

A ``faulty=True`` point additionally drives a seeded multi-family fault
schedule (crashes, blackouts, loss bursts, duplication, jitter) through
the run and still asserts the full continuous invariant suite — the
per-epoch sibling of the one-shot chaos harness.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

from ..continuous import (
    ContinuousConfig,
    run_continuous_simulation,
    verify_continuous_run,
)
from ..faults import FaultSchedule

__all__ = [
    "CONTINUOUS_SMOKE_SEEDS",
    "ContinuousPoint",
    "ContinuousReport",
    "continuous_suite",
    "run_continuous_point",
]

#: Pinned seeds for the CI smoke tier (``repro continuous --smoke``).
CONTINUOUS_SMOKE_SEEDS: Tuple[int, ...] = (3, 17, 29, 41, 53)


def _continuous_faults(seed: int, devices: int, horizon: float,
                       extent: Tuple[float, float]) -> FaultSchedule:
    """A moderate multi-family fault mix over the subscription's life."""
    return FaultSchedule.generate(
        node_count=devices,
        sim_time=horizon,
        seed=seed,
        crash_fraction=0.25,
        mean_downtime=20.0,
        link_blackouts=1,
        mean_blackout=10.0,
        loss_bursts=1,
        burst_rate=0.4,
        mean_burst=8.0,
        partitions=0,
        extent=extent,
        dup_windows=1,
        dup_rate=0.3,
        mean_dup=10.0,
        jitter_windows=1,
        jitter_max=0.15,
        mean_jitter=10.0,
    )


@dataclass
class ContinuousPoint:
    """One seeded subscription run in one maintenance mode."""

    seed: int
    mode: str
    faulty: bool
    violations: List[str]
    status: str
    epochs_closed: int
    complete_epochs: int
    #: Distinct devices that ever contributed a report. 0 means the
    #: originator was isolated for the whole run — a degenerate
    #: scenario where both modes collapse to one flood per epoch.
    enrolled: int
    messages_per_refresh: float
    max_divergence: Optional[float]
    wall_seconds: float

    @property
    def ok(self) -> bool:
        return not self.violations


@dataclass
class ContinuousReport:
    """Aggregate of a continuous sweep across seeds and modes."""

    points: List[ContinuousPoint] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(p.ok for p in self.points) and not self.dominance_failures

    @property
    def violations(self) -> List[str]:
        out = []
        for p in self.points:
            out.extend(
                f"[seed={p.seed} {p.mode}{'+faults' if p.faulty else ''}] {v}"
                for v in p.violations
            )
        out.extend(self.dominance_failures)
        return out

    @property
    def dominance_failures(self) -> List[str]:
        """Scenarios where delta did not strictly beat reflood on
        messages per refresh (compared within the same seed/fault
        setting; only checked when both modes ran)."""
        failures = []
        by_scenario = {}
        for p in self.points:
            by_scenario.setdefault((p.seed, p.faulty), {})[p.mode] = p
        for (seed, faulty), modes in sorted(by_scenario.items()):
            delta, reflood = modes.get("delta"), modes.get("reflood")
            if delta is None or reflood is None:
                continue
            if reflood.enrolled == 0:
                # Isolated originator: neither mode can do anything but
                # flood into the void, so there is nothing to dominate.
                continue
            if not delta.messages_per_refresh < reflood.messages_per_refresh:
                failures.append(
                    f"[seed={seed}{'+faults' if faulty else ''}] delta "
                    f"({delta.messages_per_refresh:.1f} msg/refresh) does "
                    f"not beat reflood "
                    f"({reflood.messages_per_refresh:.1f})"
                )
        return failures

    def render(self) -> str:
        lines = [
            f"{'seed':>6} {'mode':>9} {'faults':>7} {'status':>10} "
            f"{'epochs':>7} {'complete':>9} {'enrolled':>9} "
            f"{'msg/refresh':>12} {'max_div':>8} {'ok':>4}"
        ]
        for p in self.points:
            div = f"{p.max_divergence:.3f}" if p.max_divergence is not None \
                else "-"
            lines.append(
                f"{p.seed:>6} {p.mode:>9} "
                f"{'yes' if p.faulty else 'no':>7} {p.status:>10} "
                f"{p.epochs_closed:>7} {p.complete_epochs:>9} "
                f"{p.enrolled:>9} "
                f"{p.messages_per_refresh:>12.1f} {div:>8} "
                f"{'yes' if p.ok else 'NO':>4}"
            )
        total = len(self.points)
        bad = sum(1 for p in self.points if not p.ok)
        dom = len(self.dominance_failures)
        lines.append(
            f"-- {total} runs, {total - bad} clean, {bad} with violations, "
            f"{dom} dominance failures"
        )
        return "\n".join(lines)


def run_continuous_point(
    seed: int,
    mode: str,
    faulty: bool = False,
    devices: int = 9,
    cardinality: int = 450,
    epochs: int = 4,
    static_grid: bool = False,
) -> ContinuousPoint:
    """One subscription scenario, fully derived from its seed."""
    base = ContinuousConfig(
        mode=mode,
        devices=devices,
        cardinality=cardinality,
        epochs=epochs,
        d=600.0,
        seed=seed,
        data_updates=2 * epochs,
        static_grid=static_grid,
        loss_rate=0.05 if faulty else 0.0,
    )
    faults = None
    if faulty:
        faults = _continuous_faults(
            seed + 11, devices, base.horizon, extent=(1000.0, 1000.0)
        )
        base = replace(base, faults=faults)
    start = _time.time()
    result = run_continuous_simulation(base, keep_network=True)
    violations = verify_continuous_run(result)
    record = result.record
    complete = sum(
        1 for e in record.epochs
        if e.report is not None and e.report.outcome == "completed"
    )
    return ContinuousPoint(
        seed=seed,
        mode=mode,
        faulty=faulty,
        violations=violations,
        status=record.status,
        epochs_closed=len(record.epochs),
        complete_epochs=complete,
        enrolled=len(record.device_reports),
        messages_per_refresh=result.messages_per_refresh,
        max_divergence=result.max_divergence,
        wall_seconds=_time.time() - start,
    )


def continuous_suite(
    seeds: Sequence[int],
    modes: Sequence[str] = ("delta", "reflood"),
    faulty: bool = True,
    static_grid: bool = False,
    progress: Optional[int] = None,
) -> ContinuousReport:
    """Run the delta-vs-reflood comparison over many seeds.

    Each seed produces one fault-free point per mode (the dominance
    comparison) and, when ``faulty``, one faulted delta point driven
    through the invariant suite.
    """
    report = ContinuousReport()
    done = 0
    total = len(seeds) * (len(modes) + (1 if faulty else 0))
    for seed in seeds:
        for mode in modes:
            report.points.append(
                run_continuous_point(
                    seed, mode, faulty=False, static_grid=static_grid,
                )
            )
            done += 1
            if progress and done % progress == 0:
                print(f"  continuous {done}/{total} runs...", flush=True)
        if faulty:
            report.points.append(
                run_continuous_point(
                    seed, "delta", faulty=True, static_grid=static_grid,
                )
            )
            done += 1
            if progress and done % progress == 0:
                print(f"  continuous {done}/{total} runs...", flush=True)
    return report
