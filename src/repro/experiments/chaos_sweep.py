"""Seeded chaos harness: randomized faults vs. property invariants.

The resilience layer (``repro.resilience``) promises graceful
degradation — every query closes by its deadline with an exact
accounting of where every device's contribution went, retransmission
budgets hold, and nothing leaks into the engine heap. Those are
*properties*, not example-based expectations, so this harness checks
them the property-based way: draw a randomized-but-seeded fault
schedule (crashes, link blackouts, loss bursts, partitions, message
duplication, delay jitter — all six families at once), run a full
MANET simulation through it, and assert every invariant in
:mod:`repro.resilience.invariants` on the wreckage.

``chaos_suite`` sweeps many seeds across both strategies; the CLI
(``repro chaos``) and CI's ``chaos-smoke`` job call it with 5 fixed
seeds, the acceptance run with 50+. Every run is reproducible from its
seed alone: rerun ``run_chaos_point(seed, strategy)`` to replay a
failure bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..data.partition import make_global_dataset
from ..data.workload import generate_workload
from ..faults import FaultSchedule
from ..net.world import RadioConfig
from ..obs.observer import Observer
from ..protocol.coordinator import SimulationConfig, run_manet_simulation
from ..protocol.device import ProtocolConfig
from ..resilience import ResiliencePolicy
from ..resilience.invariants import verify_run

__all__ = [
    "ChaosPoint",
    "ChaosReport",
    "chaos_protocol_config",
    "chaos_suite",
    "run_chaos_point",
]

#: Fixed seeds for the CI smoke tier (``repro chaos --smoke``) — chosen
#: once and pinned so the smoke job exercises the same six-family fault
#: mix on every run.
SMOKE_SEEDS: Tuple[int, ...] = (11, 23, 37, 58, 71)

#: Per-query deadline budget (seconds) for chaos runs. Short enough
#: that the drain window after the last workload entry covers every
#: outstanding deadline, long enough for a failover flood to land.
CHAOS_DEADLINE = 60.0


def chaos_protocol_config(
    failover: bool = True, assembler: Optional[str] = None
) -> ProtocolConfig:
    """Protocol knobs tightened for fault-heavy short runs.

    Retry budgets are deliberately small so the watchdog exhausts (and
    DF failover actually triggers) inside the deadline window.
    ``assembler=None`` resolves through the usual override/environment
    chain; CI's partitioned chaos step pins it explicitly.
    """
    return ProtocolConfig(
        query_timeout=CHAOS_DEADLINE,
        ack_timeout=1.5,
        result_retries=2,
        token_watchdog=12.0,
        token_reissues=1,
        assembler=assembler,
        resilience=ResiliencePolicy(
            deadline=CHAOS_DEADLINE,
            df_failover=failover,
            orphan_suppression=True,
        ),
    )


@dataclass
class ChaosPoint:
    """One seeded chaos run, fully accounted."""

    seed: int
    strategy: str
    failover: bool
    violations: List[str]
    queries: int
    completed: int
    deadline_expired: int
    aborted: int
    failovers: int
    coverage: float
    fault_events: int

    @property
    def ok(self) -> bool:
        return not self.violations


@dataclass
class ChaosReport:
    """Aggregate of a chaos sweep across seeds and strategies."""

    points: List[ChaosPoint] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(p.ok for p in self.points)

    @property
    def violations(self) -> List[str]:
        out = []
        for p in self.points:
            out.extend(
                f"[seed={p.seed} {p.strategy}"
                f"{'+failover' if p.failover else ''}] {v}"
                for v in p.violations
            )
        return out

    def render(self) -> str:
        lines = [
            f"{'seed':>6} {'strategy':>10} {'queries':>8} {'done':>5} "
            f"{'expired':>8} {'aborted':>8} {'failovers':>10} "
            f"{'coverage':>9} {'faults':>7} {'ok':>4}"
        ]
        for p in self.points:
            name = p.strategy + ("+fo" if p.failover else "")
            lines.append(
                f"{p.seed:>6} {name:>10} {p.queries:>8} {p.completed:>5} "
                f"{p.deadline_expired:>8} {p.aborted:>8} {p.failovers:>10} "
                f"{p.coverage:>9.3f} {p.fault_events:>7} "
                f"{'yes' if p.ok else 'NO':>4}"
            )
        total = len(self.points)
        bad = sum(1 for p in self.points if not p.ok)
        lines.append(
            f"-- {total} runs, {total - bad} clean, {bad} with violations"
        )
        return "\n".join(lines)


def _chaos_faults(seed: int, devices: int, sim_time: float,
                  extent: Tuple[float, float]) -> FaultSchedule:
    """All six fault families, drawn from one seed."""
    return FaultSchedule.generate(
        node_count=devices,
        sim_time=sim_time,
        seed=seed,
        crash_fraction=0.3,
        mean_downtime=25.0,
        link_blackouts=2,
        mean_blackout=15.0,
        loss_bursts=2,
        burst_rate=0.5,
        mean_burst=10.0,
        partitions=1,
        mean_partition=20.0,
        extent=extent,
        dup_windows=1,
        dup_rate=0.3,
        mean_dup=15.0,
        jitter_windows=1,
        jitter_max=0.2,
        mean_jitter=15.0,
    )


def run_chaos_point(
    seed: int,
    strategy: str,
    failover: bool = True,
    devices: int = 9,
    cardinality: int = 900,
    sim_time: float = 150.0,
    assembler: Optional[str] = None,
    observer: Optional[Observer] = None,
    include_faults: bool = True,
) -> ChaosPoint:
    """One randomized-fault simulation, checked against every invariant.

    Everything — dataset, workload, mobility, loss process, and the
    fault schedule — derives from ``seed``, so a failing point replays
    identically from its seed alone.

    Args:
        observer: Optional pre-built observer (e.g. with a flight
            recorder / stream analyzer attached); a plain one is made
            when omitted.
        include_faults: With False the same seed runs *without* its
            fault schedule — the fault-free twin the streaming
            detectors are scored against (same dataset, workload,
            mobility, and loss process).
    """
    dataset = make_global_dataset(
        cardinality, 2, devices, "independent", seed=seed, value_step=1.0,
    )
    workload = generate_workload(
        devices, sim_time, 250.0, queries_per_device=(1, 2), seed=seed + 1,
    )
    x_min, y_min, x_max, y_max = dataset.schema.spatial_extent
    faults = _chaos_faults(
        seed + 2, devices, sim_time, extent=(x_max - x_min, y_max - y_min)
    ) if include_faults else None
    protocol = chaos_protocol_config(failover, assembler=assembler)
    config = SimulationConfig(
        strategy=strategy,
        sim_time=sim_time,
        radio=RadioConfig(loss_rate=0.05),
        protocol=protocol,
        seed=seed + 3,
        # Drain far enough past the last possible issue that every
        # deadline close, retry tail, and failover flood has landed.
        drain_time=CHAOS_DEADLINE + 60.0,
        faults=faults,
    )
    if observer is None:
        observer = Observer()
    result = run_manet_simulation(
        dataset, workload, config, observer=observer, keep_network=True,
    )
    sim, _world, _devs = result.network
    violations = verify_run(
        result, dataset, protocol, observer=observer, sim=sim,
    )
    reports = [r.report for r in result.records if r.report is not None]
    contributed = sum(len(r.contributed) for r in reports)
    attainable = contributed + sum(
        len(r.lost_to_fault) + len(r.deadline_expired) for r in reports
    )
    return ChaosPoint(
        seed=seed,
        strategy=strategy,
        failover=failover,
        violations=violations,
        queries=len(result.records),
        completed=sum(1 for r in reports if r.outcome == "completed"),
        deadline_expired=sum(
            1 for r in reports if r.outcome == "deadline-expired"
        ),
        aborted=sum(1 for r in reports if r.outcome == "aborted-by-crash"),
        failovers=sum(r.failovers for r in result.records),
        coverage=(contributed / attainable) if attainable else 1.0,
        fault_events=len(result.fault_events),
    )


def chaos_suite(
    seeds: Sequence[int],
    strategies: Sequence[str] = ("bf", "df"),
    failover: bool = True,
    progress: Optional[int] = None,
    assembler: Optional[str] = None,
) -> ChaosReport:
    """Run the invariant suite over many seeds and strategies.

    Args:
        seeds: Chaos seeds; each is run once per strategy.
        strategies: Which protocol strategies to exercise.
        failover: Enable DF→BF failover in the resilience policy
            (ignored by BF, which has no token to lose).
        progress: If given, print one status line every ``progress``
            completed runs.
        assembler: Result-assembly engine for every run (``None``
            resolves via the override/environment chain).

    Returns:
        A :class:`ChaosReport`; ``report.ok`` is the pass/fail verdict.
    """
    report = ChaosReport()
    done = 0
    total = len(seeds) * len(strategies)
    for seed in seeds:
        for strategy in strategies:
            report.points.append(
                run_chaos_point(seed, strategy, failover, assembler=assembler)
            )
            done += 1
            if progress and done % progress == 0:
                print(f"  chaos {done}/{total} runs...", flush=True)
    return report
