"""Terminal plotting for figure results.

The evaluation runs in headless environments, so the CLI can render each
:class:`~repro.experiments.runner.FigureResult` as an ASCII line chart —
enough to eyeball the trends the paper's figures show (who wins, which
way the curves bend) without leaving the terminal.
"""

from __future__ import annotations

from typing import List, Optional

from .runner import FigureResult

__all__ = ["ascii_plot"]

#: Distinct glyphs assigned to series in order.
_GLYPHS = "ox+*#@%&"


def ascii_plot(
    result: FigureResult,
    width: int = 64,
    height: int = 16,
) -> str:
    """Render a figure panel as an ASCII chart.

    Args:
        result: The panel to draw.
        width: Plot area width in characters.
        height: Plot area height in rows.

    Returns:
        A multi-line string: title, chart, x-axis, and a legend.
    """
    if width < 8 or height < 4:
        raise ValueError("plot area too small (need width >= 8, height >= 4)")
    points: List[tuple] = []  # (col, row, glyph-index)
    ys: List[float] = []
    for s_idx, series in enumerate(result.series):
        for x_idx, value in enumerate(series.values):
            if value is None:
                continue
            ys.append(float(value))
    if not ys:
        return f"{result.figure}: {result.title}\n  (no data)"
    y_min, y_max = min(ys), max(ys)
    if y_max == y_min:
        y_max = y_min + 1.0
    n_x = len(result.x_values)

    def col_of(x_idx: int) -> int:
        if n_x == 1:
            return width // 2
        return round(x_idx * (width - 1) / (n_x - 1))

    def row_of(value: float) -> int:
        frac = (value - y_min) / (y_max - y_min)
        return (height - 1) - round(frac * (height - 1))

    grid = [[" "] * width for _ in range(height)]
    for s_idx, series in enumerate(result.series):
        glyph = _GLYPHS[s_idx % len(_GLYPHS)]
        previous: Optional[tuple] = None
        for x_idx, value in enumerate(series.values):
            if value is None:
                previous = None
                continue
            col, row = col_of(x_idx), row_of(float(value))
            if previous is not None:
                _draw_segment(grid, previous, (col, row), ".")
            grid[row][col] = glyph
            previous = (col, row)

    lines = [f"{result.figure}: {result.title}"]
    label_top = _fmt(y_max)
    label_bottom = _fmt(y_min)
    margin = max(len(label_top), len(label_bottom))
    for r, row in enumerate(grid):
        label = label_top if r == 0 else label_bottom if r == height - 1 else ""
        lines.append(f"{label:>{margin}} |" + "".join(row))
    lines.append(" " * margin + " +" + "-" * width)
    first_x, last_x = _fmt(result.x_values[0]), _fmt(result.x_values[-1])
    axis = " " * margin + "  " + first_x
    pad = width - len(first_x) - len(last_x)
    axis += " " * max(pad, 1) + last_x
    lines.append(axis)
    lines.append(
        " " * margin + "  " + result.x_label + "   legend: " + ", ".join(
            f"{_GLYPHS[i % len(_GLYPHS)]}={s.name}"
            for i, s in enumerate(result.series)
        )
    )
    return "\n".join(lines)


def _draw_segment(grid, a, b, glyph: str) -> None:
    """Light interpolation dots between consecutive points of a series."""
    (c0, r0), (c1, r1) = a, b
    steps = max(abs(c1 - c0), abs(r1 - r0))
    for step in range(1, steps):
        col = round(c0 + (c1 - c0) * step / steps)
        row = round(r0 + (r1 - r0) * step / steps)
        if grid[row][col] == " ":
            grid[row][col] = glyph


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.3g}"
    return str(value)
