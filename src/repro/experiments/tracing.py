"""Traced simulation runs: the ``repro trace`` command and per-run
sweep telemetry.

Two entry points:

* :func:`trace_point` — run one MANET point with an
  :class:`~repro.obs.observer.Observer` bound, profile the run's
  phases, and (optionally) dump the full telemetry bundle to a
  directory. Backs the ``repro trace`` CLI command.
* :func:`dump_run_telemetry` — write one run's telemetry bundle
  (``spans.jsonl``, ``trace.json``, ``metrics.json``, ``summary.txt``,
  ``phases.json``). The experiment executor calls this from
  :func:`~repro.experiments.manet_common.compute_manet_point` whenever
  ``REPRO_OBS`` / ``--obs`` points at a directory, so sweeps emit
  per-run telemetry next to their cached results.

Observation is passive: a traced point returns metrics bit-identical
to the untraced run (pinned by ``tests/test_obs.py``).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Tuple

from ..metrics.collector import RunMetrics
from ..obs import (
    Observer,
    PhaseProfiler,
    export_jsonl,
    query_summary,
    write_chrome_trace,
)
from .config import DEFAULT, ExperimentScale

__all__ = ["trace_point", "dump_run_telemetry", "point_slug"]


def point_slug(point) -> str:
    """Filesystem-safe identity of one sweep point."""
    return (
        f"{point.strategy}_d{int(point.distance)}_c{point.cardinality}"
        f"_n{point.dimensions}_m{point.devices}_{point.distribution}"
        f"_s{point.seed}"
    )


def dump_run_telemetry(
    observer: Observer,
    directory: Path,
    profiler: Optional[PhaseProfiler] = None,
    metrics: Optional[RunMetrics] = None,
) -> Path:
    """Write one run's telemetry bundle into ``directory``.

    Files: ``spans.jsonl`` (archival span/event dump), ``trace.json``
    (Chrome trace-event / Perfetto), ``metrics.json`` (registry
    snapshot plus, when given, the run's aggregated metrics),
    ``summary.txt`` (per-query table), ``phases.json`` (phase
    profile in the BENCH gate shape, when a profiler is given),
    ``health.json`` (streaming health report, when the observer has a
    :class:`~repro.obs.stream.StreamAnalyzer` attached), and
    ``blackbox.json`` (flight-recorder rings and dumps, when a
    :class:`~repro.obs.flight.FlightRecorder` is attached).
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    export_jsonl(observer, str(directory / "spans.jsonl"))
    write_chrome_trace(observer, str(directory / "trace.json"))
    doc = {"instruments": observer.metrics.snapshot()}
    if metrics is not None:
        doc["run"] = {
            "strategy": metrics.strategy,
            "issued": metrics.issued,
            "suppressed": metrics.suppressed,
            "completed": metrics.completed,
            "response_time_s": metrics.response_time,
            "drr": metrics.drr,
            "coverage": metrics.coverage,
            "protocol_messages": metrics.messages.protocol_total,
            "control_messages": metrics.messages.control_total,
        }
    with open(directory / "metrics.json", "w") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
    with open(directory / "summary.txt", "w") as handle:
        handle.write(query_summary(observer) + "\n")
    if profiler is not None:
        with open(directory / "phases.json", "w") as handle:
            json.dump(profiler.to_bench_json(), handle, indent=2,
                      sort_keys=True)
            handle.write("\n")
    stream = getattr(observer, "stream", None)
    if stream is not None:
        with open(directory / "health.json", "w") as handle:
            json.dump(stream.health_report(), handle, indent=2,
                      sort_keys=True)
            handle.write("\n")
    flight = getattr(observer, "flight", None)
    if flight is not None:
        flight.write_json(directory / "blackbox.json")
    return directory


def trace_point(
    strategy: str,
    scale: ExperimentScale = DEFAULT,
    directory: Optional[Path] = None,
    distance: Optional[float] = None,
) -> Tuple[Observer, PhaseProfiler, RunMetrics]:
    """Run one observed MANET point and return its full telemetry.

    The point mirrors the figure-8 fixed configuration at ``scale``
    (fixed cardinality, 2 attributes, the scale's device count); when
    ``directory`` is given the telemetry bundle is written there under
    ``<scale>/<slug>/``.
    """
    from .manet_common import ManetPoint, compute_manet_point

    point = ManetPoint(
        strategy=strategy,
        distance=(
            distance if distance is not None else scale.query_distances[-1]
        ),
        cardinality=scale.manet_fixed_cardinality,
        dimensions=2,
        devices=scale.manet_devices,
        distribution="independent",
        scale_name=scale.name,
        seed=scale.seed,
    )
    observer = Observer()
    profiler = PhaseProfiler()
    with profiler.phase("run.simulate"):
        metrics = compute_manet_point(point, scale, observer=observer)
    with profiler.phase("run.export"):
        profiler.add_spans(observer)
        if directory is not None:
            dump_run_telemetry(
                observer,
                Path(directory) / scale.name / point_slug(point),
                profiler=profiler,
                metrics=metrics,
            )
    return observer, profiler, metrics
