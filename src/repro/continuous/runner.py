"""End-to-end continuous-subscription runs and their invariant suite.

:func:`run_continuous_simulation` builds a MANET of
:class:`~repro.continuous.device.ContinuousDevice` nodes, installs one
subscription, drives a seeded data-update schedule (and optionally a
fault schedule) through it, and captures a centralized reference answer
just after every epoch close, so each
:class:`~repro.continuous.subscription.RefreshEpoch` carries its own
staleness measurement.

:func:`verify_continuous_run` is the per-epoch sibling of the one-shot
chaos invariant suite: epochs close on time, every epoch's completion
report exactly partitions the population, fault-free runs track the
reference bit-for-bit, and the engine heap drains clean.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..core.skyline import skyline_of_relation
from ..data.partition import GlobalDataset, make_global_dataset
from ..faults import (
    DataUpdateSchedule,
    FaultInjector,
    FaultSchedule,
    UpdateInjector,
)
from ..net.aodv import AodvConfig
from ..net.engine import Simulator
from ..net.mobility import (
    DEFAULT_HOLDING_TIME,
    DEFAULT_SPEED_RANGE,
    MobilityModel,
    RandomWaypoint,
    StaticPlacement,
)
from ..net.world import DELIVERY_MODES, RadioConfig, TrafficStats, World
from ..obs.observer import Observer
from ..protocol.device import ProtocolConfig
from ..resilience import ResiliencePolicy
from ..resilience.invariants import check_no_live_timers
from ..storage.relation import union_all
from .device import ContinuousDevice
from .messages import MODES
from .safe_region import relation_rows
from .subscription import SubscriptionRecord

__all__ = [
    "ContinuousConfig",
    "ContinuousResult",
    "continuous_protocol_config",
    "grid_placement",
    "run_continuous_simulation",
    "verify_continuous_run",
]

#: Reference snapshots are taken just *after* a refresh tick — late
#: enough to order after the tick's own events, early enough that no
#: guard-banded data update can land in between.
_CAPTURE_EPS = 1e-3

#: Auto-generated update schedules keep this fraction of the interval
#: clear on both sides of every refresh tick, so an epoch's reports
#: (computed at the tick in delta mode, at flood arrival — milliseconds
#: later — in reflood mode) and its reference snapshot always observe
#: the same data version. Explicit schedules can still race ticks; the
#: exactness gate only applies to fault-free runs of the default draw.
_UPDATE_GUARD = 0.15


def grid_placement(devices: int, spacing: float = 150.0) -> StaticPlacement:
    """A static square-ish grid with every neighbour inside the default
    250 m radio range — the fully connected topology exactness gates
    run on."""
    import math as _math

    side = int(_math.ceil(_math.sqrt(devices)))
    return StaticPlacement([
        ((i % side) * spacing, (i // side) * spacing)
        for i in range(devices)
    ])


def _guarded_updates(config: "ContinuousConfig") -> DataUpdateSchedule:
    """Draw a seeded update schedule that never races a refresh tick.

    Each event lands in the interior of one epoch window —
    ``tick + [guard, 1 - guard] * interval`` — so every device's report
    for an epoch and the runner's reference snapshot observe the same
    relation version.
    """
    import numpy as np

    rng = np.random.default_rng(config.seed + 5)
    schedule = DataUpdateSchedule()
    for _ in range(config.data_updates):
        device = int(rng.integers(config.devices))
        slot = int(rng.integers(config.epochs))
        offset = float(
            rng.uniform(_UPDATE_GUARD, 1.0 - _UPDATE_GUARD)
        ) * config.interval
        fraction = min(1.0, max(1e-3, float(
            rng.exponential(config.update_fraction)
        )))
        update_seed = int(rng.integers(0, 2**31 - 1))
        schedule.update(
            config.install_time + slot * config.interval + offset,
            device, fraction, update_seed,
        )
    return schedule


def continuous_protocol_config() -> ProtocolConfig:
    """Protocol knobs for subscription runs: quick retries so a DELTA's
    retransmission tail fits inside one epoch budget, orphan suppression
    on so subscriber state reaps itself after an originator crash."""
    return ProtocolConfig(
        ack_timeout=1.5,
        result_retries=2,
        resilience=ResiliencePolicy(
            deadline=60.0,
            orphan_suppression=True,
        ),
    )


@dataclass(frozen=True)
class ContinuousConfig:
    """One continuous-subscription experiment, fully seeded.

    Attributes:
        mode: ``delta`` (incremental maintenance) or ``reflood``
            (naive per-epoch re-flood) — the benchmark's comparison axis.
        devices / cardinality / dimensions / distribution: Dataset shape
            (one partition per device, sites static).
        d: Subscription disk radius (metres from the originator's
            install-time position).
        originator: Device that installs the subscription.
        install_time: When the install flood goes out.
        interval / epochs / epoch_budget / slack: The subscription
            schedule (see :class:`~repro.continuous.messages.SubscriptionSpec`).
        data_updates: Events drawn into a seeded
            :class:`~repro.faults.DataUpdateSchedule` covering the
            subscription's lifetime (ignored when ``updates`` is given).
        update_fraction: Mean changed-row fraction per drawn update.
        updates: Explicit update schedule override.
        faults: Optional fault schedule (crashes, blackouts, ...).
        loss_rate: Radio loss rate (keep 0 for exactness gates).
        seed: Master seed: dataset, mobility, loss, update draws.
        drain_time: Extra simulated seconds after the last epoch close.
        capture_reference: Snapshot the centralized answer after every
            epoch close (costs nothing on the wire; pure bookkeeping).
    """

    mode: str = "delta"
    devices: int = 9
    cardinality: int = 900
    dimensions: int = 2
    distribution: str = "independent"
    d: float = 250.0
    originator: int = 0
    install_time: float = 10.0
    interval: float = 20.0
    epochs: int = 5
    epoch_budget: float = 8.0
    slack: float = 0.0
    data_updates: int = 6
    update_fraction: float = 0.3
    updates: Optional[DataUpdateSchedule] = None
    faults: Optional[FaultSchedule] = None
    loss_rate: float = 0.0
    seed: int = 7
    drain_time: float = 30.0
    capture_reference: bool = True
    #: Place devices on a static connected grid instead of random
    #: waypoint — the setup for exactness gates, where every device is
    #: reachable at every epoch and fault-free runs must be bit-exact.
    static_grid: bool = False
    protocol: ProtocolConfig = field(
        default_factory=continuous_protocol_config
    )
    speed_range: Tuple[float, float] = DEFAULT_SPEED_RANGE
    holding_time: float = DEFAULT_HOLDING_TIME
    #: Broadcast delivery mode forwarded to the world — ``"wave"`` /
    #: ``"per_receiver"`` / ``None`` (environment default). Subscription
    #: runs are bit-identical across modes; the wave differential suite
    #: pins it.
    delivery: Optional[str] = None

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}")
        if self.delivery is not None and self.delivery not in DELIVERY_MODES:
            raise ValueError(
                f"delivery must be None or one of {DELIVERY_MODES}, "
                f"got {self.delivery!r}"
            )
        if not 0 <= self.originator < self.devices:
            raise ValueError("originator must be a valid device id")
        if self.install_time < 0:
            raise ValueError("install_time must be >= 0")

    @property
    def last_close(self) -> float:
        """Simulated time of the final epoch's close."""
        last_tick = self.install_time + self.epochs * self.interval
        return (last_tick if self.epochs else self.install_time) \
            + self.epoch_budget

    @property
    def horizon(self) -> float:
        """Total simulated duration including drain."""
        return self.last_close + self.drain_time


@dataclass
class ContinuousResult:
    """Everything one subscription run produced."""

    record: SubscriptionRecord
    traffic: TrafficStats
    dataset: GlobalDataset
    config: ContinuousConfig
    update_events: Tuple = ()
    fault_events: Tuple = ()
    network: Optional[Tuple] = None

    @property
    def epochs(self):
        return self.record.epochs

    @property
    def messages_per_refresh(self) -> float:
        """Mean protocol frames per refresh epoch (excluding the install
        epoch, whose full-flood cost both modes share)."""
        refresh = [e for e in self.record.epochs if e.epoch > 0]
        if not refresh:
            return 0.0
        return sum(e.messages for e in refresh) / len(refresh)

    @property
    def max_divergence(self) -> Optional[float]:
        """Worst staleness across epochs with a captured reference."""
        divs = [
            e.divergence for e in self.record.epochs
            if e.divergence is not None
        ]
        return max(divs) if divs else None

    @property
    def local_cache_stats(self) -> Optional[dict]:
        """Aggregate per-device local-result cache counters.

        Requires ``keep_network=True`` (None otherwise). The refresh
        path re-issues the same query signature every epoch, so on
        update-free devices the hit rate approaches 1.0 — the
        skyline-diagram serving win the cache exists for.
        """
        if self.network is None:
            return None
        devices = self.network[2]
        caches = [
            d.local_cache for d in devices
            if getattr(d, "local_cache", None) is not None
        ]
        if not caches:
            return None
        hits = sum(c.hits for c in caches)
        misses = sum(c.misses for c in caches)
        return {
            "hits": hits,
            "misses": misses,
            "invalidations": sum(c.invalidations for c in caches),
            "hit_rate": hits / (hits + misses) if hits + misses else 0.0,
        }


def run_continuous_simulation(
    config: ContinuousConfig,
    mobility: Optional[MobilityModel] = None,
    observer: Optional[Observer] = None,
    keep_network: bool = False,
) -> ContinuousResult:
    """Run one continuous-subscription experiment end to end."""
    dataset = make_global_dataset(
        config.cardinality, config.dimensions, config.devices,
        config.distribution, seed=config.seed, value_step=1.0,
    )
    sim = Simulator()
    if mobility is None and config.static_grid:
        mobility = grid_placement(config.devices)
    if mobility is None:
        mobility = RandomWaypoint(
            node_count=config.devices,
            extent=dataset.schema.spatial_extent,
            speed_range=config.speed_range,
            holding_time=config.holding_time,
            seed=config.seed,
        )
    world = World(
        sim, mobility, RadioConfig(loss_rate=config.loss_rate),
        seed=config.seed, delivery=config.delivery,
    )
    devices = [
        ContinuousDevice(
            world, i, dataset.local(i),
            config=config.protocol, aodv_config=AodvConfig(),
        )
        for i in range(config.devices)
    ]
    if observer is not None:
        observer.bind(world)
    fault_injector: Optional[FaultInjector] = None
    if config.faults is not None:
        fault_injector = FaultInjector(config.faults).install(world)
    updates = config.updates
    if updates is None and config.data_updates > 0 and config.epochs > 0:
        updates = _guarded_updates(config)
    update_injector: Optional[UpdateInjector] = None
    if updates is not None and updates:
        update_injector = UpdateInjector(
            updates, value_step=1.0
        ).install(world, devices)

    originator = devices[config.originator]
    installed: List[SubscriptionRecord] = []

    def install() -> None:
        installed.append(
            originator.install_subscription(
                d=config.d,
                interval=config.interval,
                epochs=config.epochs,
                epoch_budget=config.epoch_budget,
                mode=config.mode,
                slack=config.slack,
            )
        )

    sim.schedule_at(config.install_time, install)

    references: dict = {}

    def capture(epoch: int) -> None:
        if not installed:
            return
        # The reference is the answer a fresh centralized query would
        # see at the refresh instant: the skyline of every device's
        # current data restricted to the subscription disk. Data
        # survives crashes (storage is not volatile state), so all
        # devices contribute.
        query = installed[0].spec.query
        slices = [
            device.relation.restrict(query.pos, query.d)
            for device in devices
        ]
        references[epoch] = relation_rows(
            skyline_of_relation(union_all(slices))
        )

    if config.capture_reference:
        for epoch in range(config.epochs + 1):
            tick_at = config.install_time + epoch * config.interval
            sim.schedule_at(tick_at + _CAPTURE_EPS, capture, epoch)

    sim.run(until=config.horizon)

    if not installed:  # pragma: no cover - install is unconditional
        raise RuntimeError("subscription was never installed")
    for books in installed[0].epochs:
        if books.epoch in references:
            books.reference_rows = references[books.epoch]
    return ContinuousResult(
        record=installed[0],
        traffic=world.stats,
        dataset=dataset,
        config=config,
        update_events=(
            update_injector.applied_signature()
            if update_injector is not None else ()
        ),
        fault_events=(
            fault_injector.applied_signature()
            if fault_injector is not None else ()
        ),
        network=(sim, world, devices) if keep_network else None,
    )


def verify_continuous_run(result: ContinuousResult) -> List[str]:
    """Assert the continuous layer's invariants on a finished run.

    Checks (violations returned as strings, empty list = clean):

    1. The subscription reached a terminal state (expired / cancelled /
       aborted) — nothing left half-open after the drain.
    2. Every expected epoch closed exactly once, in order, each within
       its budget of its tick.
    3. Every epoch's completion report (when attached) exactly
       partitions the device population — the one-shot partition
       invariant, applied per refresh.
    4. On fault-free lossless runs: every captured epoch is exact
       (divergence 0.0) and covers the full population.
    5. The engine heap drained clean (when the network was kept).
    """
    violations: List[str] = []
    record = result.record
    config = result.config
    if not record.closed:
        violations.append(
            f"subscription {record.key} still {record.status!r} after drain"
        )
    if record.status == "expired":
        expected = list(range(record.epochs_total + 1))
        got = [e.epoch for e in record.epochs]
        if got != expected:
            violations.append(
                f"epoch sequence {got} != expected {expected}"
            )
    seen = set()
    for books in record.epochs:
        if books.epoch in seen:
            violations.append(f"epoch {books.epoch} closed twice")
        seen.add(books.epoch)
        lag = books.closed_at - books.tick_time
        if lag > config.epoch_budget + 1e-9:
            violations.append(
                f"epoch {books.epoch} closed {lag:.3f}s after its tick "
                f"(budget {config.epoch_budget})"
            )
        if books.report is not None and not books.report.is_exact_partition(
            frozenset(range(config.devices))
        ):
            violations.append(
                f"epoch {books.epoch} report does not partition the "
                f"population"
            )
    fault_free = (
        result.config.faults is None and result.config.loss_rate == 0.0
    )
    if fault_free:
        for books in record.epochs:
            complete = (
                books.report is not None
                and books.report.outcome == "completed"
            )
            if config.static_grid and not complete:
                # On a fully connected static topology nothing can
                # legitimately go missing.
                violations.append(
                    f"epoch {books.epoch} outcome "
                    f"{books.report.outcome if books.report else None!r} "
                    f"on a fault-free connected run"
                )
            if books.divergence is None:
                continue
            if (complete or config.static_grid) and books.divergence != 0.0:
                # A fully covered fault-free epoch must be bit-exact; an
                # epoch with a physical partition hole cannot be (the
                # missing device's data is unknowable), so divergence is
                # only gated when coverage was complete.
                violations.append(
                    f"epoch {books.epoch} diverges from the reference "
                    f"({books.divergence:.4f}) on a fault-free run"
                )
    if result.network is not None:
        sim = result.network[0]
        violations.extend(check_no_live_timers(sim))
    return violations
