"""Wire payloads for continuous skyline subscriptions.

Three frame kinds (all members of ``FrameKind.PROTOCOL``):

* ``SUBSCRIBE`` — flooded control traffic: install, renew, and (in the
  naive re-flood mode) per-epoch refresh floods. Every flood carries a
  *fresh* ``(origin, cnt)`` query under the paper's duplicate-
  suppression log, so flood dedup needs no new machinery; the
  subscription itself is identified by the install flood's key.
* ``DELTA`` — routed data traffic: a contributor's full local in-range
  skyline on enrollment (``full=True``), afterwards only membership
  changes (``enters``/``leaves``). Travels home under the same
  ACK/retry recovery as BF results.
* ``UNSUBSCRIBE`` — flooded teardown.

Wire-size accounting follows the one-shot messages: query specs are
small and fixed, tuples dominate, id lists cost 4 bytes per site.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Tuple

from ..core.query import SkylineQuery
from ..net.messages import QUERY_BYTES, tuple_bytes
from ..storage.relation import Relation

# Wire payloads carry an optional causal ``trace``
# (``repro.obs.causal.TraceContext``) under the ``serial`` idiom:
# ``compare=False``, excluded from ``size_bytes``, and ``None`` in
# unobserved runs — pure observability metadata.

__all__ = [
    "SubscriptionSpec",
    "SubscribeMessage",
    "DeltaMessage",
    "DeltaAckMessage",
    "UnsubscribeMessage",
]

#: Delta-mode variants a run can compare.
MODES = ("delta", "reflood")


@dataclass(frozen=True)
class SubscriptionSpec:
    """The immutable contract of one subscription, fixed at install.

    Attributes:
        query: The range-skyline query. ``query.key`` is the
            subscription's identity; ``query.pos``/``query.d`` pin the
            spatial disk at install time (the region does not follow
            the originator around).
        install_time: Simulation time of the install flood — the epoch
            clock's origin: refresh epoch ``e`` ticks at
            ``install_time + e * interval``.
        interval: Seconds between refresh epochs.
        epochs: Refresh epochs after install (renewals raise the
            effective total; the spec records the install-time value).
        epoch_budget: Seconds after each tick before the originator
            closes the epoch's books (must not exceed ``interval``).
        mode: ``delta`` (incremental maintenance, the tentpole) or
            ``reflood`` (naive: re-flood the query every epoch).
        slack: Extra metres of spatial safe-region margin (conservatism
            knob; tuple sites are static, so 0 is already sound).
    """

    query: SkylineQuery
    install_time: float
    interval: float
    epochs: int
    epoch_budget: float
    mode: str = "delta"
    slack: float = 0.0

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ValueError("interval must be > 0")
        if self.epochs < 0:
            raise ValueError("epochs must be >= 0")
        if not 0 < self.epoch_budget <= self.interval:
            raise ValueError("epoch_budget must be in (0, interval]")
        if self.mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}")
        if self.slack < 0:
            raise ValueError("slack must be >= 0")

    @property
    def key(self) -> Tuple[int, int]:
        """Subscription identity: the install flood's ``(origin, cnt)``."""
        return self.query.key

    def tick_time(self, epoch: int) -> float:
        """Absolute time refresh epoch ``epoch`` (>= 1) ticks."""
        return self.install_time + epoch * self.interval


@dataclass(frozen=True)
class SubscribeMessage:
    """Flooded subscription control: install, renew, or refresh flood.

    Attributes:
        spec: The subscription contract (renew floods carry the updated
            epoch total in ``epochs_total``).
        flood: Dedup identity of *this* flood — a fresh ``(origin,
            cnt)`` per flood so the standard query log suppresses
            re-broadcast storms. Equals ``spec.query`` on install.
        kind: ``install``, ``renew``, or ``reflood``.
        epoch: The refresh epoch a ``reflood`` flood solicits (0 for
            install; the current epoch for renew).
        epochs_total: Effective total refresh epochs after this message
            (install: ``spec.epochs``; renew: the extended total).
        hops: Hop distance from the originator (route learning).
    """

    spec: SubscriptionSpec
    flood: SkylineQuery
    kind: str
    epoch: int
    epochs_total: int
    hops: int = 1
    trace: Optional[Any] = field(default=None, compare=False, repr=False)

    def size_bytes(self, dimensions: int) -> int:
        """Two query specs (subscription + flood identity) plus the
        schedule parameters."""
        return 2 * QUERY_BYTES + 16

    @property
    def sub_key(self) -> Tuple[int, int]:
        return self.spec.key

    @property
    def query_key(self) -> Tuple[int, int]:
        """Observer attribution: trace under the subscription's key."""
        return self.spec.key


@dataclass(frozen=True)
class DeltaMessage:
    """One contributor's routed incremental update for one epoch.

    ``full=True`` replaces the device's whole stored report (install,
    re-enrollment, safe-region violation); otherwise ``enters`` are
    tuples that entered the device's local in-range skyline (or changed
    value — same site id, new values) and ``leaves`` are site ids that
    left it.
    """

    sub_key: Tuple[int, int]
    sender: int
    epoch: int
    enters: Relation
    leaves: Tuple[int, ...] = ()
    full: bool = False
    data_epoch: int = 0
    trace: Optional[Any] = field(default=None, compare=False, repr=False)

    def size_bytes(self, dimensions: int) -> int:
        """Tuples on the wire, 4 bytes per leaving site id, small header."""
        return (
            12
            + self.enters.cardinality * tuple_bytes(dimensions)
            + 4 * len(self.leaves)
        )

    @property
    def query_key(self) -> Tuple[int, int]:
        """Observer attribution: trace under the subscription's key."""
        return self.sub_key


@dataclass(frozen=True)
class DeltaAckMessage:
    """Originator's acknowledgement of one DELTA copy."""

    sub_key: Tuple[int, int]
    epoch: int
    trace: Optional[Any] = field(default=None, compare=False, repr=False)

    def size_bytes(self) -> int:
        return 12

    @property
    def query_key(self) -> Tuple[int, int]:
        """Observer attribution: trace under the subscription's key."""
        return self.sub_key


@dataclass(frozen=True)
class UnsubscribeMessage:
    """Flooded teardown of a subscription."""

    sub_key: Tuple[int, int]
    flood: SkylineQuery
    hops: int = 1
    trace: Optional[Any] = field(default=None, compare=False, repr=False)

    def size_bytes(self, dimensions: int) -> int:
        return QUERY_BYTES + 8

    @property
    def query_key(self) -> Tuple[int, int]:
        """Observer attribution: trace under the subscription's key."""
        return self.sub_key
