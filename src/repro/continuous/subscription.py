"""Originator-side subscription state: stored reports, refresh epochs.

The maintained answer is the skyline of the union of per-device *local
in-range skylines* (each device self-reduces, nothing is filtered
across devices). That representation is what makes incremental
maintenance sound with no invalidation cascades: a device's stored
report is a pure function of its own relation version, so a DELTA from
device ``i`` replaces exactly ``i``'s slice of the union and the global
skyline is recomputed from slices — a tuple suppressed by a remote
dominator can never be lost, because it was never removed from its
owner's slice.

Every refresh epoch produces a :class:`RefreshEpoch` with a
:class:`~repro.resilience.CompletionReport`, so graded coverage and the
chaos invariant suite apply per epoch exactly as they do per one-shot
query.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

import numpy as np

from ..core.skyline import skyline_of_relation
from ..net.engine import EventHandle
from ..resilience.report import CompletionReport, build_completion_report
from ..storage.relation import Relation, union_all
from .messages import DeltaMessage, SubscriptionSpec
from .safe_region import relation_rows

__all__ = ["RefreshEpoch", "SubscriptionRecord", "apply_delta"]


def apply_delta(stored: Relation, delta: DeltaMessage) -> Relation:
    """Fold one device's DELTA into its stored report slice."""
    if delta.full:
        return delta.enters
    drop = set(int(s) for s in delta.leaves)
    drop.update(int(s) for s in delta.enters.site_ids)
    if drop:
        keep = ~np.isin(stored.site_ids, np.array(sorted(drop), dtype=np.int64))
        stored = stored.take(np.nonzero(keep)[0])
    if delta.enters.cardinality:
        stored = stored.union(delta.enters)
    return stored


@dataclass
class RefreshEpoch:
    """The closed books of one refresh epoch.

    Attributes:
        epoch: Epoch number (0 = install).
        tick_time: When the epoch's refresh window opened.
        closed_at: When the originator closed it (tick + budget).
        result_rows: Row identities of the maintained answer at close.
        reporters: Devices whose DELTA arrived inside this epoch.
        report: Graded per-epoch completion accounting.
        messages: Protocol frames the whole network sent inside the
            epoch window (close-to-close delta of the world counter) —
            the benchmark's messages-per-refresh numerator.
        reference_rows: Row identities of a fresh centralized reference
            answer at close time (filled by the runner when reference
            capture is on; None otherwise).
    """

    epoch: int
    tick_time: float
    closed_at: float
    result_rows: FrozenSet[Tuple]
    reporters: FrozenSet[int]
    report: Optional[CompletionReport]
    messages: int
    reference_rows: Optional[FrozenSet[Tuple]] = None

    @property
    def divergence(self) -> Optional[float]:
        """Staleness of the maintained answer vs. the reference:
        ``|result Δ reference| / max(1, |reference|)`` (0.0 = exact),
        None before reference capture."""
        if self.reference_rows is None:
            return None
        sym = len(self.result_rows ^ self.reference_rows)
        return sym / max(1, len(self.reference_rows))


class _EpochShim:
    """Duck-typed record fed to ``build_completion_report`` per epoch."""

    __slots__ = ("query", "originator", "contributions",
                 "reachable_at_issue", "aborted_by_crash", "completion_time")

    def __init__(self, query, originator, covered, reachable, complete,
                 closed_at) -> None:
        self.query = query
        self.originator = originator
        self.contributions = {device: True for device in sorted(covered)}
        self.reachable_at_issue = reachable
        self.aborted_by_crash = False
        self.completion_time = closed_at if complete else None


@dataclass
class SubscriptionRecord:
    """Originator-side lifecycle record of one continuous subscription."""

    spec: SubscriptionSpec
    originator: int
    epochs_total: int
    status: str = "active"
    #: Per-device stored report slice (the device's local in-range
    #: skyline as of its latest accepted DELTA).
    device_reports: Dict[int, Relation] = field(default_factory=dict)
    #: World crash counter per device at its latest accepted DELTA —
    #: a device whose counter moved since then lost its subscriber
    #: state (fail-stop), so its silence is loss, not a safe region.
    report_crash_counts: Dict[int, int] = field(default_factory=dict)
    #: Accepted ``(sender, epoch)`` pairs — the idempotence guard that
    #: makes fault-injected duplicate DELTA deliveries no-ops.
    delta_seen: Set[Tuple[int, int]] = field(default_factory=set)
    #: Devices whose DELTA arrived in the epoch currently open.
    epoch_reporters: Set[int] = field(default_factory=set)
    #: The originator's own local in-range skyline slice, and the
    #: ``data_epoch`` it was computed at (the originator's own safe
    #: region — an unchanged epoch skips the recomputation at a tick).
    own_report: Optional[Relation] = None
    own_data_epoch: int = -1
    epochs: List[RefreshEpoch] = field(default_factory=list)
    current_epoch: int = 0
    reachable_at_tick: FrozenSet[int] = frozenset()
    close_timer: Optional[EventHandle] = field(default=None, repr=False)
    tick_timer: Optional[EventHandle] = field(default=None, repr=False)
    messages_at_open: int = 0

    @property
    def key(self) -> Tuple[int, int]:
        return self.spec.key

    @property
    def closed(self) -> bool:
        return self.status != "active"

    def result(self) -> Relation:
        """The maintained global answer: skyline of the union of every
        stored slice (slices are already self-reduced)."""
        slices = []
        if self.own_report is not None:
            slices.append(self.own_report)
        slices.extend(
            self.device_reports[device]
            for device in sorted(self.device_reports)
        )
        if not slices:  # pragma: no cover - install always sets own_report
            raise RuntimeError("subscription record has no stored slices")
        return skyline_of_relation(union_all(slices))

    def result_rows(self) -> FrozenSet[Tuple]:
        return relation_rows(self.result())

    def close_epoch(
        self,
        epoch: int,
        tick_time: float,
        closed_at: float,
        population: FrozenSet[int],
        down_now: FrozenSet[int],
        crash_counts: Dict[int, int],
        messages_now: int,
        completion_report: bool = True,
    ) -> RefreshEpoch:
        """Build one epoch's books: result snapshot, graded report.

        A device counts as *covered* this epoch when its stored slice is
        provably current: it reported inside the epoch, or it is
        enrolled, up, and has not crashed since its latest report (the
        subscriber contract makes such a device's silence mean "no
        change"). Enrolled devices that crashed since reporting are
        lost-to-fault; never-enrolled devices are unreachable-at-issue
        unless the tick-time snapshot says the flood could have reached
        them, in which case their silence is deadline-expired.
        """
        reporters = frozenset(self.epoch_reporters)
        covered = set(reporters)
        crashed_during = set()
        for device, seen_count in self.report_crash_counts.items():
            if device in covered:
                continue
            if crash_counts.get(device, 0) == seen_count and device not in down_now:
                covered.add(device)
            else:
                crashed_during.add(device)
        shim = _EpochShim(
            query=self.spec.query,
            originator=self.originator,
            covered=covered,
            # An enrolled device was provably reached (its install-flood
            # report landed), so even when the tick-time snapshot can no
            # longer see it — crashed, recovered elsewhere — it belongs
            # to the reachable side of the partition: lost-to-fault, not
            # unreachable-at-issue.
            reachable=self.reachable_at_tick
            | frozenset(covered)
            | frozenset(crashed_during),
            complete=covered >= (population - {self.originator}),
            closed_at=closed_at,
        )
        report = None
        if completion_report:
            report = build_completion_report(
                shim,
                population=population,
                down_now=down_now,
                closed_at=closed_at,
                crashed_during=frozenset(crashed_during),
            )
        books = RefreshEpoch(
            epoch=epoch,
            tick_time=tick_time,
            closed_at=closed_at,
            result_rows=self.result_rows(),
            reporters=reporters,
            report=report,
            messages=messages_now - self.messages_at_open,
        )
        self.epochs.append(books)
        self.epoch_reporters.clear()
        self.messages_at_open = messages_now
        return books

    def accept_delta(
        self, delta: DeltaMessage, crash_count: int
    ) -> bool:
        """Merge one DELTA if its ``(sender, epoch)`` is new; returns
        whether it was fresh (duplicate deliveries return False)."""
        tag = (delta.sender, delta.epoch)
        if tag in self.delta_seen:
            return False
        self.delta_seen.add(tag)
        stored = self.device_reports.get(delta.sender)
        if stored is None:
            if not delta.full:
                # An incremental delta for a slice we never stored —
                # possible when the originator crashed and a renew
                # re-enrolled the sender before it noticed. Treat the
                # enters as the whole slice; the next full report heals.
                stored = delta.enters
                self.device_reports[delta.sender] = stored
            else:
                self.device_reports[delta.sender] = delta.enters
        else:
            self.device_reports[delta.sender] = apply_delta(stored, delta)
        self.report_crash_counts[delta.sender] = crash_count
        self.epoch_reporters.add(delta.sender)
        return True

    def cancel_timers(self) -> None:
        if self.close_timer is not None:
            self.close_timer.cancel()
            self.close_timer = None
        if self.tick_timer is not None:
            self.tick_timer.cancel()
            self.tick_timer = None
