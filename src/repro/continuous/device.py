"""The continuous-subscription device: BF machinery + delta maintenance.

:class:`ContinuousDevice` extends the flood strategy device with a
subscription plane:

* **Originator side** — install/renew/cancel floods, per-epoch books
  (:class:`~repro.continuous.subscription.SubscriptionRecord`), DELTA
  acknowledgement, refresh-epoch deadline timers that re-arm through
  the cancel-before-schedule path (the timer-reuse bugfix this PR
  pins).
* **Subscriber side** — enrollment with a full local in-range skyline
  report, self-scheduled refresh ticks on the shared epoch clock
  (``install_time + e * interval``; no per-epoch flood in delta mode),
  safe-region silence, incremental DELTAs under ACK/retry recovery,
  orphan reaping against a crashed originator at every tick (PR 6's
  suppression contract).

Fail-stop crash semantics carry over: a crashed subscriber loses its
subscription state (it stops ticking and never reports again until a
renew or reflood flood re-enrolls it); a crashed originator's
subscription aborts and its subscribers reap themselves at their next
tick.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, FrozenSet, Optional, Tuple

import numpy as np

from ..core.query import SkylineQuery
from ..net.aodv import DataPacket
from ..net.engine import EventHandle
from ..net.messages import Frame, FrameKind
from ..protocol.device import BFDevice
from ..storage.relation import Relation
from .messages import (
    DeltaAckMessage,
    DeltaMessage,
    SubscribeMessage,
    SubscriptionSpec,
    UnsubscribeMessage,
)
from .safe_region import SafeRegion, relation_rows
from .subscription import SubscriptionRecord

__all__ = ["ContinuousDevice"]


@dataclass
class _SubscriberState:
    """Contributor-side state for one enrolled subscription."""

    spec: SubscriptionSpec
    epochs_total: int
    region: SafeRegion
    tick_timer: Optional[EventHandle] = None


@dataclass
class _PendingDelta:
    """A DELTA awaiting its application-level ACK."""

    delta: DeltaMessage
    origin: int
    attempts: int = 0
    timer: Optional[EventHandle] = None


class ContinuousDevice(BFDevice):
    """Flood-strategy device with continuous-subscription support."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        #: Originator-side records, keyed by subscription key.
        self.subscriptions: Dict[Tuple[int, int], SubscriptionRecord] = {}
        #: Contributor-side enrollment state, keyed by subscription key.
        self._subscriber: Dict[Tuple[int, int], _SubscriberState] = {}
        #: Un-ACKed DELTAs, keyed by (subscription key, epoch).
        self._pending_deltas: Dict[
            Tuple[Tuple[int, int], int], _PendingDelta
        ] = {}

    # -- fault hooks ---------------------------------------------------------

    def on_crash(self) -> None:
        for pending in self._pending_deltas.values():
            if pending.timer is not None:
                pending.timer.cancel()
        self._pending_deltas.clear()
        for state in self._subscriber.values():
            if state.tick_timer is not None:
                state.tick_timer.cancel()
        self._subscriber.clear()
        for record in self.subscriptions.values():
            if not record.closed:
                record.status = "aborted"
                record.cancel_timers()
                if self.world.obs.enabled:
                    self.world.obs.subscription_cancelled(
                        record.key, self.node_id, "originator-crash"
                    )
        super().on_crash()

    # -- originator API ------------------------------------------------------

    def install_subscription(
        self,
        d: float,
        interval: float,
        epochs: int,
        epoch_budget: float,
        mode: str = "delta",
        slack: float = 0.0,
    ) -> SubscriptionRecord:
        """Register a continuous range-skyline subscription and flood
        its install message. Epoch 0 (the install epoch) closes after
        ``epoch_budget``; refresh epoch ``e`` ticks at ``install_time +
        e * interval``."""
        query = SkylineQuery(
            origin=self.node_id,
            cnt=self.query_counter.next_value(),
            pos=self.position,
            d=d,
        )
        if query.key in self.subscriptions:  # pragma: no cover - cnt wraps
            raise RuntimeError(f"subscription key {query.key} already live")
        self.query_log.record(query)
        spec = SubscriptionSpec(
            query=query,
            install_time=self.sim.now,
            interval=interval,
            epochs=epochs,
            epoch_budget=epoch_budget,
            mode=mode,
            slack=slack,
        )
        record = SubscriptionRecord(
            spec=spec, originator=self.node_id, epochs_total=epochs,
        )
        self.subscriptions[query.key] = record
        local = self.compute_local(query, None)
        record.own_report = local.skyline
        record.own_data_epoch = self.data_epoch
        record.reachable_at_tick = frozenset(
            self.world.reachable_from(self.node_id)
        )
        record.messages_at_open = self.world.stats.protocol_messages()
        if self.world.obs.enabled:
            self.world.obs.subscription_installed(
                query.key, self.node_id, d=d, interval=interval,
                epochs=epochs, mode=mode,
            )
        self._broadcast_subscribe(
            SubscribeMessage(
                spec=spec, flood=query, kind="install", epoch=0,
                epochs_total=epochs, trace=self._trace(spec.key),
            )
        )
        self._arm_epoch_close(record, 0, spec.install_time)
        self._schedule_epoch_tick(record)
        return record

    def renew_subscription(
        self, key: Tuple[int, int], extra_epochs: int
    ) -> None:
        """Extend a live subscription by ``extra_epochs`` refresh epochs
        and flood the renewal (which also re-enrolls devices that lost
        their subscriber state to a crash)."""
        record = self.subscriptions.get(key)
        if record is None or record.closed:
            raise RuntimeError(f"no live subscription {key} to renew")
        if extra_epochs <= 0:
            raise ValueError("extra_epochs must be > 0")
        record.epochs_total += extra_epochs
        flood = replace(
            record.spec.query, cnt=self.query_counter.next_value()
        )
        self.query_log.record(flood)
        if self.world.obs.enabled:
            self.world.obs.event(
                "subscription.renew", query=key, node=self.node_id,
                epochs_total=record.epochs_total,
            )
        self._broadcast_subscribe(
            SubscribeMessage(
                spec=record.spec, flood=flood, kind="renew",
                epoch=record.current_epoch,
                epochs_total=record.epochs_total,
                trace=self._trace(record.key),
            )
        )
        self._schedule_epoch_tick(record)

    def cancel_subscription(self, key: Tuple[int, int]) -> None:
        """Tear a subscription down: stop its timers and flood the
        unsubscribe so contributors drop their state."""
        record = self.subscriptions.get(key)
        if record is None or record.closed:
            raise RuntimeError(f"no live subscription {key} to cancel")
        record.status = "cancelled"
        record.cancel_timers()
        if self.world.obs.enabled:
            self.world.obs.subscription_cancelled(
                key, self.node_id, "cancelled"
            )
        flood = replace(
            record.spec.query, cnt=self.query_counter.next_value()
        )
        self.query_log.record(flood)
        message = UnsubscribeMessage(sub_key=key, flood=flood,
                                     trace=self._trace(key))
        self.world.broadcast(
            Frame(
                kind=FrameKind.UNSUBSCRIBE,
                src=self.node_id,
                dst=None,
                payload=message,
                size_bytes=message.size_bytes(self.relation.dimensions),
            )
        )

    # -- originator epoch machinery ------------------------------------------

    def _arm_epoch_close(
        self, record: SubscriptionRecord, epoch: int, tick_time: float
    ) -> None:
        """(Re-)arm the per-epoch deadline, cancelling any prior timer —
        the same cancel-before-schedule contract as
        ``SkylineDevice._arm_close_timer``: a refresh epoch re-arms the
        subscription's deadline key, and the stale timer must not fire
        into the new epoch or linger in the engine heap."""
        if record.close_timer is not None:
            record.close_timer.cancel()
        delay = tick_time + record.spec.epoch_budget - self.sim.now
        record.close_timer = self._schedule_guarded(
            max(0.0, delay), self._close_epoch, record.key, epoch, tick_time
        )

    def _schedule_epoch_tick(self, record: SubscriptionRecord) -> None:
        """Arm the originator's next refresh tick (cancel-then-arm)."""
        if record.tick_timer is not None:
            record.tick_timer.cancel()
            record.tick_timer = None
        next_epoch = record.current_epoch + 1
        if next_epoch > record.epochs_total:
            return
        delay = record.spec.tick_time(next_epoch) - self.sim.now
        record.tick_timer = self._schedule_guarded(
            max(0.0, delay), self._epoch_tick, record.key, next_epoch
        )

    def _epoch_tick(self, key: Tuple[int, int], epoch: int) -> None:
        record = self.subscriptions.get(key)
        if record is None or record.closed:
            return
        record.current_epoch = epoch
        record.tick_timer = None
        record.reachable_at_tick = frozenset(
            self.world.reachable_from(self.node_id)
        )
        if self.data_epoch != record.own_data_epoch:
            local = self.compute_local(record.spec.query, None)
            record.own_report = local.skyline
            record.own_data_epoch = self.data_epoch
        if record.spec.mode == "reflood":
            flood = replace(
                record.spec.query, cnt=self.query_counter.next_value()
            )
            self.query_log.record(flood)
            self._broadcast_subscribe(
                SubscribeMessage(
                    spec=record.spec, flood=flood, kind="reflood",
                    epoch=epoch, epochs_total=record.epochs_total,
                    trace=self._trace(record.key),
                )
            )
        self._arm_epoch_close(record, epoch, record.spec.tick_time(epoch))
        self._schedule_epoch_tick(record)

    def _close_epoch(
        self, key: Tuple[int, int], epoch: int, tick_time: float
    ) -> None:
        record = self.subscriptions.get(key)
        if record is None or record.closed:
            return
        record.close_timer = None
        books = record.close_epoch(
            epoch=epoch,
            tick_time=tick_time,
            closed_at=self.sim.now,
            population=frozenset(self.world.node_ids),
            down_now=frozenset(self.world.down_nodes),
            crash_counts=self.world.crash_counts(),
            messages_now=self.world.stats.protocol_messages(),
            completion_report=self.config.resilience.completion_report,
        )
        if self.world.obs.enabled:
            self.world.obs.subscription_refreshed(
                key, self.node_id, epoch,
                reporters=len(books.reporters),
                covered=(
                    len(books.report.contributed)
                    if books.report is not None else None
                ),
                messages=books.messages,
            )
        if epoch >= record.epochs_total:
            record.status = "expired"
            record.cancel_timers()
            if self.world.obs.enabled:
                self.world.obs.subscription_cancelled(
                    key, self.node_id, "expired"
                )
            return
        if record.spec.mode == "delta":
            covered = (
                set(books.report.contributed)
                if books.report is not None else set(books.reporters)
            )
            missing = (
                set(self.world.node_ids) - {self.node_id} - covered
            )
            if missing:
                # Healing flood: devices the epoch could not account for
                # (partitioned at install, crashed and recovered, newly
                # in radio range) get another chance to enroll. Already-
                # enrolled devices dedup it in one hop via the query
                # log, so the cost is one flood — and only on epochs
                # with a coverage hole; reflood mode pays it always.
                flood = replace(
                    record.spec.query, cnt=self.query_counter.next_value()
                )
                self.query_log.record(flood)
                if self.world.obs.enabled:
                    self.world.obs.event(
                        "subscription.heal-flood", query=key,
                        node=self.node_id, epoch=epoch,
                        missing=len(missing),
                    )
                    self.world.obs.metrics.counter(
                        "continuous.heal_floods"
                    ).inc()
                self._broadcast_subscribe(
                    SubscribeMessage(
                        spec=record.spec, flood=flood, kind="renew",
                        epoch=epoch, epochs_total=record.epochs_total,
                        trace=self._trace(record.key),
                    )
                )

    # -- frame dispatch ------------------------------------------------------

    def on_protocol_frame(self, frame: Frame, sender: int) -> None:
        if frame.kind == FrameKind.SUBSCRIBE and isinstance(
            frame.payload, SubscribeMessage
        ):
            self._handle_subscribe_flood(frame.payload, sender)
            return
        if frame.kind == FrameKind.UNSUBSCRIBE and isinstance(
            frame.payload, UnsubscribeMessage
        ):
            self._handle_unsubscribe_flood(frame.payload, sender)
            return
        super().on_protocol_frame(frame, sender)

    def on_data(self, packet: DataPacket) -> None:
        if packet.kind == FrameKind.DELTA and isinstance(
            packet.payload, DeltaMessage
        ):
            self._accept_delta(packet.payload)
            return
        if packet.kind == FrameKind.ACK and isinstance(
            packet.payload, DeltaAckMessage
        ):
            self._on_delta_ack(packet.payload)
            return
        super().on_data(packet)

    # -- subscriber side -----------------------------------------------------

    def _handle_subscribe_flood(
        self, message: SubscribeMessage, sender: int
    ) -> None:
        origin = message.spec.query.origin
        if origin == self.node_id:
            return
        if (
            self.config.resilience.orphan_suppression
            and not self.world.node_is_up(origin)
        ):
            self._reap_orphan(message.sub_key, "subscribe-flood")
            return
        self.router.learn_route(origin, sender, message.hops)
        if not self.query_log.check_and_record(message.flood):
            # Same flood via another path, or a fault-injected duplicate
            # delivery: either way it was fully handled the first time.
            return
        self._broadcast_subscribe(replace(
            message, hops=message.hops + 1,
            trace=self._trace(message.sub_key),
        ))
        state = self._subscriber.get(message.sub_key)
        if state is None:
            self._enroll(message)
            return
        if message.kind == "renew":
            state.epochs_total = message.epochs_total
            self._schedule_subscriber_tick(message.sub_key, state)
            return
        if message.kind == "reflood":
            # Naive mode: every epoch flood solicits a full report.
            local = self.compute_local(message.spec.query, None)
            state.region.note_report(
                self.data_epoch, relation_rows(local.skyline)
            )
            self._ship_delta(
                message.spec, message.epoch, local.skyline, full=True
            )

    def _enroll(self, message: SubscribeMessage) -> None:
        """First contact with this subscription: full report + safe
        region + (delta mode) self-scheduled refresh ticks."""
        spec = message.spec
        local = self.compute_local(spec.query, None)
        region = SafeRegion.establish(
            relation=self.relation,
            pos=spec.query.pos,
            d=spec.query.d,
            slack=spec.slack,
            data_epoch=self.data_epoch,
            reported=local.skyline,
        )
        state = _SubscriberState(
            spec=spec, epochs_total=message.epochs_total, region=region,
        )
        self._subscriber[spec.key] = state
        self._ship_delta(spec, message.epoch, local.skyline, full=True)
        if spec.mode == "delta":
            self._schedule_subscriber_tick(spec.key, state)

    def _schedule_subscriber_tick(
        self, key: Tuple[int, int], state: _SubscriberState
    ) -> None:
        if state.tick_timer is not None:
            state.tick_timer.cancel()
            state.tick_timer = None
        spec = state.spec
        elapsed = self.sim.now - spec.install_time
        next_epoch = max(1, int(math.floor(elapsed / spec.interval)) + 1)
        if next_epoch > state.epochs_total:
            return
        delay = spec.tick_time(next_epoch) - self.sim.now
        state.tick_timer = self._schedule_guarded(
            max(0.0, delay), self._subscriber_tick, key, next_epoch
        )

    def _subscriber_tick(self, key: Tuple[int, int], epoch: int) -> None:
        state = self._subscriber.get(key)
        if state is None:
            return
        state.tick_timer = None
        spec = state.spec
        if epoch > state.epochs_total:
            del self._subscriber[key]
            return
        origin = spec.query.origin
        if (
            self.config.resilience.orphan_suppression
            and not self.world.node_is_up(origin)
        ):
            # PR 6's suppression contract, extended: a dead originator
            # orphans the whole subscription, not just one message.
            del self._subscriber[key]
            self._reap_orphan(key, "subscription")
            return
        reason = state.region.silence_reason(self.data_epoch)
        if reason is None:
            local = self.compute_local(spec.query, None)
            rows = relation_rows(local.skyline)
            if state.region.unchanged(rows):
                state.region.note_report(self.data_epoch, rows)
                reason = "no-change"
            else:
                self._ship_incremental(state, epoch, local.skyline, rows)
        if reason is not None and self.world.obs.enabled:
            self.world.obs.event(
                "safe-region.silent", query=key, node=self.node_id,
                epoch=epoch, reason=reason,
            )
            self.world.obs.metrics.counter(
                f"continuous.silent.{reason}"
            ).inc()
        if epoch >= state.epochs_total:
            del self._subscriber[key]
        else:
            delay = spec.tick_time(epoch + 1) - self.sim.now
            state.tick_timer = self._schedule_guarded(
                max(0.0, delay), self._subscriber_tick, key, epoch + 1
            )

    def _ship_incremental(
        self,
        state: _SubscriberState,
        epoch: int,
        skyline: Relation,
        rows: FrozenSet[Tuple],
    ) -> None:
        """Diff the fresh local skyline against the last report and ship
        only the membership changes."""
        last = state.region.last_report_rows
        enter_rows = rows - last
        current_sids = {int(s) for s in skyline.site_ids}
        leaves = tuple(sorted(
            {int(row[0]) for row in last} - current_sids
        ))
        if enter_rows:
            mask = np.array(
                [
                    ((int(sid),) + tuple(float(v) for v in vals)) in enter_rows
                    for sid, vals in zip(skyline.site_ids, skyline.values)
                ],
                dtype=bool,
            )
            enters = skyline.take(np.nonzero(mask)[0])
        else:
            enters = skyline.take(np.empty(0, dtype=np.int64))
        state.region.note_report(self.data_epoch, rows)
        delta = DeltaMessage(
            sub_key=state.spec.key,
            sender=self.node_id,
            epoch=epoch,
            enters=enters,
            leaves=leaves,
            full=False,
            data_epoch=self.data_epoch,
            trace=self._trace(state.spec.key),
        )
        if self.world.obs.enabled:
            self.world.obs.delta_sent(
                state.spec.key, self.node_id, epoch,
                enters=enters.cardinality, leaves=len(leaves),
            )
        self._dispatch_delta(delta, state.spec.query.origin)

    def _ship_delta(
        self, spec: SubscriptionSpec, epoch: int, skyline: Relation,
        full: bool,
    ) -> None:
        """Ship a full-slice report (install / renew / reflood)."""
        delta = DeltaMessage(
            sub_key=spec.key,
            sender=self.node_id,
            epoch=epoch,
            enters=skyline,
            leaves=(),
            full=full,
            data_epoch=self.data_epoch,
            trace=self._trace(spec.key),
        )
        if self.world.obs.enabled:
            self.world.obs.delta_sent(
                spec.key, self.node_id, epoch,
                enters=skyline.cardinality, leaves=0,
            )
        self._dispatch_delta(delta, spec.query.origin)

    def _dispatch_delta(self, delta: DeltaMessage, origin: int) -> None:
        """Route a DELTA home under the BF ACK/retry machinery."""
        self._send_delta_frame(delta, origin)
        if self.config.result_ack and self.config.result_retries > 0:
            pending = _PendingDelta(delta=delta, origin=origin)
            self._pending_deltas[(delta.sub_key, delta.epoch)] = pending
            self._arm_delta_retry((delta.sub_key, delta.epoch), pending)

    def _send_delta_frame(self, delta: DeltaMessage, origin: int) -> None:
        self.router.send_data(
            dest=origin,
            kind=FrameKind.DELTA,
            payload=delta,
            size_bytes=delta.size_bytes(self.relation.dimensions),
        )

    def _arm_delta_retry(
        self, tag: Tuple[Tuple[int, int], int], pending: _PendingDelta
    ) -> None:
        backoff = min(
            self.config.ack_timeout * (2.0 ** pending.attempts),
            self.config.ack_backoff_cap,
        )
        pending.timer = self._schedule_guarded(
            backoff, self._retry_delta, tag
        )

    def _retry_delta(self, tag: Tuple[Tuple[int, int], int]) -> None:
        pending = self._pending_deltas.get(tag)
        if pending is None:
            return
        if (
            self.config.resilience.orphan_suppression
            and not self.world.node_is_up(pending.origin)
        ):
            del self._pending_deltas[tag]
            self._reap_orphan(tag[0], "delta-retry")
            return
        if pending.attempts >= self.config.result_retries:
            del self._pending_deltas[tag]
            return
        pending.attempts += 1
        if self.world.obs.enabled:
            self.world.obs.event(
                "delta.retransmit", query=tag[0], node=self.node_id,
                epoch=tag[1], attempt=pending.attempts,
            )
            self.world.obs.metrics.counter(
                "continuous.deltas.retransmits"
            ).inc()
        self._send_delta_frame(pending.delta, pending.origin)
        self._arm_delta_retry(tag, pending)

    def _handle_unsubscribe_flood(
        self, message: UnsubscribeMessage, sender: int
    ) -> None:
        if message.flood.origin == self.node_id:
            return
        if not self.query_log.check_and_record(message.flood):
            return
        self.world.broadcast(
            Frame(
                kind=FrameKind.UNSUBSCRIBE,
                src=self.node_id,
                dst=None,
                payload=replace(message, hops=message.hops + 1,
                                trace=self._trace(message.sub_key)),
                size_bytes=message.size_bytes(self.relation.dimensions),
            )
        )
        state = self._subscriber.pop(message.sub_key, None)
        if state is not None:
            if state.tick_timer is not None:
                state.tick_timer.cancel()
            for tag in [
                t for t in self._pending_deltas if t[0] == message.sub_key
            ]:
                pending = self._pending_deltas.pop(tag)
                if pending.timer is not None:
                    pending.timer.cancel()

    # -- originator DELTA intake ---------------------------------------------

    def _accept_delta(self, delta: DeltaMessage) -> None:
        """ACK every copy (even duplicates — an unacknowledged sender
        keeps retransmitting), merge each ``(sender, epoch)`` once."""
        if self.config.result_ack:
            ack = DeltaAckMessage(sub_key=delta.sub_key, epoch=delta.epoch,
                                  trace=self._trace(delta.sub_key))
            self.router.send_data(
                dest=delta.sender,
                kind=FrameKind.ACK,
                payload=ack,
                size_bytes=ack.size_bytes(),
            )
        record = self.subscriptions.get(delta.sub_key)
        if record is None or record.closed:
            return
        fresh = record.accept_delta(
            delta, self.world.crash_count(delta.sender)
        )
        if fresh and self.world.obs.enabled:
            self.world.obs.delta_merged(
                delta.sub_key, self.node_id, delta.sender, delta.epoch
            )

    def _on_delta_ack(self, ack: DeltaAckMessage) -> None:
        pending = self._pending_deltas.pop((ack.sub_key, ack.epoch), None)
        if pending is None:
            return
        if pending.timer is not None:
            pending.timer.cancel()

    # -- shared --------------------------------------------------------------

    def _broadcast_subscribe(self, message: SubscribeMessage) -> None:
        self.world.broadcast(
            Frame(
                kind=FrameKind.SUBSCRIBE,
                src=self.node_id,
                dst=None,
                payload=message,
                size_bytes=message.size_bytes(self.relation.dimensions),
            )
        )
