"""Continuous skyline subscriptions with incremental delta maintenance.

Long-lived range-skyline subscriptions over the MANET: an originator
installs a subscription with one flood, contributors report their local
in-range skylines once in full, and afterwards only skyline-membership
*changes* travel (routed DELTA frames under ACK/retry), gated by
per-device safe regions that prove when silence is sound. Every refresh
epoch closes with the same graded
:class:`~repro.resilience.CompletionReport` accounting as a one-shot
query.
"""

from .device import ContinuousDevice
from .messages import (
    MODES,
    DeltaAckMessage,
    DeltaMessage,
    SubscribeMessage,
    SubscriptionSpec,
    UnsubscribeMessage,
)
from .runner import (
    ContinuousConfig,
    ContinuousResult,
    continuous_protocol_config,
    grid_placement,
    run_continuous_simulation,
    verify_continuous_run,
)
from .safe_region import SafeRegion, min_distance_to_mbr, relation_rows
from .subscription import RefreshEpoch, SubscriptionRecord, apply_delta

__all__ = [
    "MODES",
    "ContinuousConfig",
    "ContinuousDevice",
    "ContinuousResult",
    "DeltaAckMessage",
    "DeltaMessage",
    "RefreshEpoch",
    "SafeRegion",
    "SubscribeMessage",
    "SubscriptionRecord",
    "SubscriptionSpec",
    "UnsubscribeMessage",
    "apply_delta",
    "continuous_protocol_config",
    "grid_placement",
    "min_distance_to_mbr",
    "relation_rows",
    "run_continuous_simulation",
    "verify_continuous_run",
]
