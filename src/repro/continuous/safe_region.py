"""Per-device safe regions: when silence is provably sound.

A subscriber may stay silent at a refresh epoch iff its silence cannot
change the subscription answer. The answer is the skyline of the union
of every device's *local in-range skyline* (self-reduced only — no
cross-device filtering), so a device's report is a pure function of
(its relation version, the query disk). That gives three sound silence
clauses, checked cheapest-first:

1. **Spatial clause** — the device's data MBR lies entirely outside the
   query disk (plus ``slack`` metres of margin). Tuple sites are static
   and updates are value-only, so this exemption, once established at
   enrollment, holds forever: the device's in-range set is empty at
   every epoch. (The ``slack`` knob buys the same permanence under a
   future model where sites drift up to ``slack`` between epochs.)
2. **Version clause** — the device's ``data_epoch`` is unchanged since
   its last report. Same relation version + same disk ⇒ same local
   skyline ⇒ the stored report at the originator is still exact.
3. **Value clause** — the data did change, but the recomputed local
   in-range skyline equals the last reported one row-for-row (the
   update moved tuples around inside their dominance cells without
   changing skyline membership or skyline values). Reporting an
   identical set would be pure overhead.

Soundness property (pinned by ``tests/test_continuous.py``): replacing
a silent device's stored report with its freshly recomputed local
skyline never changes the global answer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import FrozenSet, Optional, Tuple

from ..storage.relation import Relation

__all__ = ["SafeRegion", "relation_rows", "min_distance_to_mbr"]


def relation_rows(relation: Relation) -> FrozenSet[Tuple]:
    """Identity set of a relation's tuples: ``(site_id, values...)``.

    The row identity deliberately includes the values, so a value
    change on a site that stays in the skyline still reads as a
    membership change (leave + re-enter)."""
    return frozenset(
        (int(sid),) + tuple(float(v) for v in row)
        for sid, row in zip(relation.site_ids, relation.values)
    )


def min_distance_to_mbr(
    pos: Tuple[float, float], mbr: Tuple[float, float, float, float]
) -> float:
    """Euclidean distance from ``pos`` to the closest point of ``mbr``
    (0 when ``pos`` is inside)."""
    x, y = pos
    x_min, y_min, x_max, y_max = mbr
    dx = max(x_min - x, 0.0, x - x_max)
    dy = max(y_min - y, 0.0, y - y_max)
    return math.hypot(dx, dy)


@dataclass
class SafeRegion:
    """A subscriber's silence certificate for one subscription.

    Attributes:
        spatially_exempt: Clause 1 held at enrollment — permanent.
        last_data_epoch: Device ``data_epoch`` at the last report
            (clause 2 compares against the live counter).
        last_report_rows: Row identities of the last reported local
            skyline (clause 3 compares a recomputation against it).
    """

    spatially_exempt: bool
    last_data_epoch: int
    last_report_rows: FrozenSet[Tuple]

    @classmethod
    def establish(
        cls,
        relation: Relation,
        pos: Tuple[float, float],
        d: float,
        slack: float,
        data_epoch: int,
        reported: Relation,
    ) -> "SafeRegion":
        """Build the region at enrollment time, after the full report."""
        exempt = relation.cardinality == 0 or (
            min_distance_to_mbr(pos, relation.mbr()) > d + slack
        )
        return cls(
            spatially_exempt=exempt,
            last_data_epoch=data_epoch,
            last_report_rows=relation_rows(reported),
        )

    def silence_reason(self, data_epoch: int) -> Optional[str]:
        """Cheapest-first silence check *before* recomputation.

        Returns ``"spatial"`` or ``"epoch"`` when silence is already
        proven, else None — the caller must then recompute and may still
        stay silent via :meth:`unchanged` (clause 3).
        """
        if self.spatially_exempt:
            return "spatial"
        if data_epoch == self.last_data_epoch:
            return "epoch"
        return None

    def unchanged(self, rows: FrozenSet[Tuple]) -> bool:
        """Clause 3: does a recomputed report equal the last one?"""
        return rows == self.last_report_rows

    def note_report(self, data_epoch: int, rows: FrozenSet[Tuple]) -> None:
        """Update the certificate after reporting (or after clause 3
        proved the recomputation redundant)."""
        self.last_data_epoch = data_epoch
        self.last_report_rows = rows
