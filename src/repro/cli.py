"""Command-line interface: regenerate any figure's data as a text table.

Examples::

    python -m repro fig5a
    python -m repro fig6 --scale smoke
    python -m repro all --scale smoke
    repro-skyline fig12 --scale default
    repro-skyline trace --scale smoke --obs telemetry/
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, List

from . import experiments as ex
from .core.assembly import ASSEMBLERS, configure_assembler
from .core.local import LOCAL_PATHS, configure_local_path

__all__ = ["main"]

_FIGURES: Dict[str, List[Callable]] = {
    "fig5a": [ex.figure_5a],
    "fig5b": [ex.figure_5b],
    "fig5": [ex.figure_5a, ex.figure_5b],
    "fig6a": [ex.figure_6a],
    "fig6b": [ex.figure_6b],
    "fig6c": [ex.figure_6c],
    "fig6": [ex.figure_6a, ex.figure_6b, ex.figure_6c],
    "fig7a": [ex.figure_7a],
    "fig7b": [ex.figure_7b],
    "fig7c": [ex.figure_7c],
    "fig7": [ex.figure_7a, ex.figure_7b, ex.figure_7c],
    "fig8a": [ex.figure_8a],
    "fig8b": [ex.figure_8b],
    "fig8c": [ex.figure_8c],
    "fig8": [ex.figure_8a, ex.figure_8b, ex.figure_8c],
    "fig9a": [ex.figure_9a],
    "fig9b": [ex.figure_9b],
    "fig9c": [ex.figure_9c],
    "fig9": [ex.figure_9a, ex.figure_9b, ex.figure_9c],
    "fig10a": [ex.figure_10a],
    "fig10b": [ex.figure_10b],
    "fig10c": [ex.figure_10c],
    "fig10": [ex.figure_10a, ex.figure_10b, ex.figure_10c],
    "fig11a": [ex.figure_11a],
    "fig11b": [ex.figure_11b],
    "fig11c": [ex.figure_11c],
    "fig11": [ex.figure_11a, ex.figure_11b, ex.figure_11c],
    "fig12": [ex.figure_12],
    "sensitivity": [
        lambda scale: ex.radio_range_sweep(scale=scale),
        lambda scale: ex.speed_sweep(scale=scale),
        lambda scale: ex.cpu_sweep(scale=scale),
    ],
    "faults": [
        lambda scale: ex.fault_loss_sweep(scale=scale, metric="coverage"),
        lambda scale: ex.fault_loss_sweep(scale=scale, metric="response"),
        lambda scale: ex.fault_churn_sweep(scale=scale, metric="coverage"),
        lambda scale: ex.fault_churn_sweep(scale=scale, metric="response"),
    ],
}
_FIGURES["all"] = [
    fn
    for key in ("fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12")
    for fn in _FIGURES[key]
]


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-skyline",
        description=(
            "Regenerate the evaluation figures of 'Skyline Queries Against "
            "Mobile Lightweight Devices in MANETs' (ICDE 2006)."
        ),
    )
    parser.add_argument(
        "figure",
        choices=sorted(_FIGURES) + ["trace", "chaos", "continuous",
                                    "blackbox"],
        help=(
            "which figure (or figure group) to regenerate; 'trace' runs "
            "one observed simulation per strategy and prints its "
            "query-lifecycle summary; 'chaos' runs the seeded fault "
            "harness and checks the resilience invariants; 'continuous' "
            "sweeps delta-maintained subscriptions against the naive "
            "re-flood baseline and checks the per-epoch invariants; "
            "'blackbox' runs one seeded chaos point with the flight "
            "recorder and streaming detectors on, prints every "
            "post-mortem dump plus the health dashboard, and can write "
            "blackbox.json / health.json (or inspect one with --load)"
        ),
    )
    parser.add_argument(
        "--scale",
        default="default",
        choices=("smoke", "default", "paper"),
        help="experiment scale (default: default; paper = full-size grids)",
    )
    parser.add_argument(
        "--plot",
        action="store_true",
        help="also render each panel as an ASCII chart",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        help="write the results as a markdown report to FILE",
    )
    parser.add_argument(
        "--workers",
        type=int,
        metavar="N",
        help=(
            "worker processes for MANET sweeps (default: REPRO_WORKERS "
            "or the CPU count; 1 = serial reference path)"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        help=(
            "persistent run-cache directory (default: REPRO_CACHE_DIR "
            "or .repro_cache; 'off' disables disk caching)"
        ),
    )
    parser.add_argument(
        "--obs",
        metavar="DIR",
        help=(
            "telemetry directory: traced runs write spans.jsonl, a "
            "Perfetto trace.json, metrics.json, and a per-query summary "
            "per run (default: REPRO_OBS; 'off' disables)"
        ),
    )
    parser.add_argument(
        "--strategy",
        default="both",
        choices=("bf", "df", "both"),
        help="strategies for the 'trace' command (default: both)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=(
            "for the 'chaos' and 'continuous' commands: run only the 5 "
            "pinned smoke seeds (the CI tier) instead of --seeds "
            "randomized ones"
        ),
    )
    parser.add_argument(
        "--seeds",
        type=int,
        default=50,
        metavar="N",
        help=(
            "for the 'chaos' and 'continuous' commands: number of seeds "
            "to sweep (default: 50)"
        ),
    )
    parser.add_argument(
        "--seed-base",
        type=int,
        default=100,
        metavar="S",
        help=(
            "for the 'chaos' and 'continuous' commands: first seed "
            "(default: 100)"
        ),
    )
    parser.add_argument(
        "--grid",
        action="store_true",
        help=(
            "for the 'continuous' command: place devices on a static "
            "connected grid (the exactness setting) instead of random "
            "waypoint mobility"
        ),
    )
    parser.add_argument(
        "--out",
        metavar="DIR",
        help=(
            "for the 'blackbox' command: directory to write "
            "blackbox.json and health.json into"
        ),
    )
    parser.add_argument(
        "--load",
        metavar="FILE",
        help=(
            "for the 'blackbox' command: render an existing "
            "blackbox.json instead of running a simulation"
        ),
    )
    parser.add_argument(
        "--local-path",
        choices=LOCAL_PATHS,
        help=(
            "local skyline processing path: 'fast' tiled numpy kernels "
            "or 'reference' row-at-a-time loops (default: fast; results "
            "and operation counts are identical, only wall time differs)"
        ),
    )
    parser.add_argument(
        "--assembler",
        choices=ASSEMBLERS,
        help=(
            "result-assembly engine: 'incremental' running arrays, "
            "'partitioned' grid-cell pruning + merge tree, or 'legacy' "
            "rebuild-per-merge (default: incremental; results are "
            "bit-identical, only wall time differs)"
        ),
    )
    return parser


def _run_trace(args, scale) -> int:
    """The ``trace`` command: one observed run per requested strategy."""
    from pathlib import Path

    from .experiments.tracing import trace_point
    from .obs import query_summary, telemetry_root

    directory = telemetry_root()
    strategies = ("bf", "df") if args.strategy == "both" else (args.strategy,)
    spanless = []
    for strategy in strategies:
        start = time.time()
        observer, profiler, _metrics = trace_point(
            strategy, scale, directory=directory
        )
        print(f"=== {strategy} (scale={scale.name}) ===")
        print(query_summary(observer))
        print()
        print(profiler.render())
        print(f"  [{time.time() - start:.1f}s]")
        print()
        if not observer.spans:
            spanless.append(strategy)
    if directory is not None:
        print(f"telemetry written under {Path(directory) / scale.name}")
    if spanless:
        # The telemetry bundle is still written and valid (an empty
        # trace loads fine in Perfetto) — but a span-less trace run is
        # almost always a misconfiguration, so say so loudly and let
        # CI notice via the exit code.
        print(
            "warning: no spans observed for "
            + ", ".join(spanless)
            + " — the run issued no queries (empty trace written)",
            file=sys.stderr,
        )
        return 3
    return 0


def _run_blackbox(args) -> int:
    """The ``blackbox`` command: a seeded chaos run with the flight
    recorder and streaming detectors on, rendered as a post-mortem."""
    import json
    from pathlib import Path

    from .obs import load_blackbox, render_dump

    if args.load:
        try:
            doc = load_blackbox(args.load)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        dumps = doc.get("dumps", [])
        print(
            f"{args.load}: capacity={doc.get('capacity')} "
            f"nodes={len(doc.get('nodes', {}))} dumps={len(dumps)} "
            f"evicted={doc.get('evicted')}"
        )
        for dump in dumps:
            print()
            print(render_dump(dump))
        return 0

    from .experiments.chaos_sweep import run_chaos_point
    from .obs import FlightRecorder, Observer, StreamAnalyzer

    strategy = "df" if args.strategy == "both" else args.strategy
    seed = args.seed_base
    observer = Observer()
    flight = FlightRecorder()
    stream = StreamAnalyzer()
    observer.attach_flight(flight).attach_stream(stream)
    start = time.time()
    point = run_chaos_point(seed, strategy, observer=observer)
    print(
        f"=== blackbox: seed={seed} strategy={strategy} "
        f"queries={point.queries} completed={point.completed} "
        f"coverage={point.coverage:.3f} faults={point.fault_events} ==="
    )
    print()
    print(stream.render_dashboard())
    if flight.dumps:
        for dump in flight.dumps:
            print()
            print(render_dump(dump.to_dict()))
    else:
        print()
        print("(no post-mortem triggers fired)")
    print(f"  [{time.time() - start:.1f}s]")
    if args.out:
        out = Path(args.out)
        out.mkdir(parents=True, exist_ok=True)
        flight.write_json(out / "blackbox.json")
        with open(out / "health.json", "w") as handle:
            json.dump(stream.health_report(), handle, indent=2,
                      sort_keys=True)
            handle.write("\n")
        print(f"blackbox.json and health.json written under {out}")
    if point.violations:
        print()
        print("invariant violations:", file=sys.stderr)
        for violation in point.violations:
            print(f"  {violation}", file=sys.stderr)
        return 1
    return 0


def _run_chaos(args) -> int:
    """The ``chaos`` command: seeded fault harness + invariant suite."""
    from .experiments.chaos_sweep import SMOKE_SEEDS, chaos_suite

    if args.smoke:
        seeds = list(SMOKE_SEEDS)
    else:
        if args.seeds < 1:
            print("error: --seeds must be >= 1", file=sys.stderr)
            return 2
        seeds = list(range(args.seed_base, args.seed_base + args.seeds))
    strategies = ("bf", "df") if args.strategy == "both" else (args.strategy,)
    start = time.time()
    report = chaos_suite(seeds, strategies=strategies, progress=20)
    print(report.render())
    print(f"  [{time.time() - start:.1f}s]")
    if not report.ok:
        print()
        print("invariant violations:", file=sys.stderr)
        for violation in report.violations:
            print(f"  {violation}", file=sys.stderr)
        return 1
    return 0


def _run_continuous(args) -> int:
    """The ``continuous`` command: delta vs. re-flood subscription sweep."""
    from .experiments.continuous_sweep import (
        CONTINUOUS_SMOKE_SEEDS,
        continuous_suite,
    )

    if args.smoke:
        seeds = list(CONTINUOUS_SMOKE_SEEDS)
    else:
        if args.seeds < 1:
            print("error: --seeds must be >= 1", file=sys.stderr)
            return 2
        seeds = list(range(args.seed_base, args.seed_base + args.seeds))
    start = time.time()
    report = continuous_suite(seeds, static_grid=args.grid, progress=5)
    print(report.render())
    print(f"  [{time.time() - start:.1f}s]")
    if not report.ok:
        print()
        print("continuous violations:", file=sys.stderr)
        for violation in report.violations:
            print(f"  {violation}", file=sys.stderr)
        return 1
    return 0


def main(argv=None) -> int:
    """Entry point for ``python -m repro`` / ``repro-skyline``."""
    args = build_parser().parse_args(argv)
    if args.workers is not None and args.workers < 1:
        print("error: --workers must be >= 1", file=sys.stderr)
        return 2
    ex.configure(workers=args.workers, cache_dir=args.cache_dir)
    configure_local_path(args.local_path)
    configure_assembler(args.assembler)
    if args.obs is not None:
        from .obs import configure_telemetry

        configure_telemetry(args.obs)
    if args.figure == "blackbox":
        return _run_blackbox(args)
    if args.figure == "chaos":
        return _run_chaos(args)
    if args.figure == "continuous":
        return _run_continuous(args)
    scale = ex.get_scale(args.scale)
    if args.figure == "trace":
        return _run_trace(args, scale)
    results = []
    for fn in _FIGURES[args.figure]:
        start = time.time()
        result = fn(scale)
        results.append(result)
        print(result.render())
        if args.plot:
            from .experiments.plotting import ascii_plot

            print()
            print(ascii_plot(result))
        print(f"  [{time.time() - start:.1f}s]")
        print()
    if args.output:
        from .experiments.report import markdown_report

        report = markdown_report(
            results,
            title=f"Measured results — scale={scale.name}",
            preamble=(
                "Regenerated with `python -m repro "
                f"{args.figure} --scale {scale.name}`."
            ),
        )
        with open(args.output, "w") as handle:
            handle.write(report + "\n")
        print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
